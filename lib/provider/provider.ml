(** The first-class provider interface (ROADMAP item 3).

    Everything the pipeline knows about a cloud lives behind one record:
    the resource catalogue (schemas, canonical/Terraform name mapping),
    region and sku knowledge, the hidden ground-truth rule set the
    deployment simulator enforces, the update/quota semantics, the
    oracle's "documentation", and the corpus scenario templates. The
    mining, validation, serving and CLI layers consume only this record;
    [Zodiac_azure] and [Zodiac_aws] each export one value of it. *)

module Value = Zodiac_iac.Value
module Schema = Zodiac_iac.Schema
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Check = Zodiac_spec.Check
module Spec_parser = Zodiac_spec.Spec_parser
module Prng = Zodiac_util.Prng

(* ---- deployment phases and rules ----------------------------------

   The five-phase deployment model (plugin validation, pre-deployment
   state sync, creation, async polling, post-deployment sync) is shared
   by every provider; only the rule content differs. These types are
   re-exported by [Zodiac_cloud.Rules] for compatibility. *)

type phase = Plugin | Pre_sync | Create | Polling | Post_sync

type rule = {
  rule_id : string;
  check : Check.t;
  phase : phase;
  message : string;
}

let phase_to_string = function
  | Plugin -> "plugin"
  | Pre_sync -> "pre-sync"
  | Create -> "create"
  | Polling -> "polling"
  | Post_sync -> "post-sync"

let rule rule_id phase message src =
  match Spec_parser.parse src with
  | Ok check -> { rule_id; check; phase; message }
  | Error e -> invalid_arg (Printf.sprintf "Rules: bad rule %s: %s" rule_id e)

(* ---- oracle knowledge ---------------------------------------------

   The constrained quantity of a mined numeric candidate, as decomposed
   by the LLM oracle: a degree bound towards a peer type, or a numeric
   attribute bound. Providers answer [documented_limit] queries over
   these. *)

type quantity = Deg of [ `In | `Out ] * string | Num of string

(* ---- corpus builder context ---------------------------------------

   Scenario templates are provider code, but they share one builder
   context so the generator's PRNG discipline (one derived stream per
   project, calls in construction order) is uniform across providers. *)

module Build = struct
  type ctx = {
    rng : Prng.t;
    region : string;
    token : string;  (* per-project uniquifier, like real naming prefixes *)
    mutable resources : Resource.t list;
    mutable counter : int;
  }

  let new_ctx ~regions rng =
    (* Most projects are single-region, like real deployments. *)
    let region = Prng.choose_list rng regions in
    let token = Printf.sprintf "%04x" (Prng.int rng 0xFFFF) in
    { rng; region; token; resources = []; counter = 0 }

  let fresh ctx base =
    ctx.counter <- ctx.counter + 1;
    Printf.sprintf "%s%d%s" base ctx.counter ctx.token

  let add ctx rtype rname attrs =
    let r = Resource.make rtype rname attrs in
    ctx.resources <- ctx.resources @ [ r ];
    r

  let str s = Value.Str s
  let int i = Value.Int i
  let bool b = Value.Bool b
  let refv rtype rname attr = Value.reference rtype rname attr
  let ref_to r attr = refv r.Resource.rtype r.Resource.rname attr
end

(* ---- the provider record ------------------------------------------ *)

type t = {
  name : string;  (** CLI name, e.g. ["azure"] *)
  tf_prefix : string;  (** Terraform resource-type prefix, e.g. ["azurerm_"] *)
  (* catalogue *)
  schemas : Schema.t list;
  find_schema : string -> Schema.t option;
  type_names : string list;
  of_terraform : string -> string option;
  to_terraform : string -> string;
  reserved_names : (string * string) list;
      (** provider-reserved subnet names and the single type allowed to
          occupy them *)
  (* regions *)
  regions : string list;
  is_region : string -> bool;
  (* deployment semantics *)
  ground_truth : unit -> rule list;
      (** the hidden ground-truth rule set the simulator enforces *)
  name_scope_attr : string -> string option;
      (** naming scope: the attribute within which names of this type
          must be unique (global namespace when [None]) *)
  sku_location_attr : string -> string option;
      (** the sku-bearing attribute checked for regional availability *)
  sku_restricted_regions : (string * string list) list;
      (** regions where a sku is NOT offered *)
  immutable_attrs : string -> string list;
      (** attributes whose change forces resource replacement *)
  (* oracle knowledge *)
  documented_limit :
    subject:string ->
    cond:(string * Value.t) option ->
    quantity:quantity ->
    op:Check.cmp_op ->
    int option;
  plausible_markers : string list;
      (** marker constants that make a mined check "sound like" a real
          cloud constraint *)
  (* corpus templates *)
  scenarios : (int * (string * (Build.ctx -> unit))) list;
  injectors : (string * (Prng.t -> Program.t -> Program.t option)) list;
  add_unattended : Build.ctx -> unit;
}

let find_schema_exn t ty =
  match t.find_schema ty with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "%s: unknown resource type %s" t.name ty)

(* Provider-side attribute defaults, derived from the schemas. *)
let defaults t ~rtype ~attr =
  match t.find_schema rtype with
  | None -> None
  | Some schema -> (
      match Schema.find_attr schema attr with
      | Some { Schema.default = Some d; _ } -> Some d
      | Some _ | None -> None)

let scenario_names t = List.map (fun (_, (name, _)) -> name) t.scenarios

(* The cache-key component: warm artifacts must never cross providers.
   The name alone identifies the knowledge tables (they are code, so
   they change only with the binary, which cache stages already absorb
   through their content keys). *)
let fingerprint t =
  Zodiac_util.Codec.fingerprint [ "provider"; t.name; t.tf_prefix ]
