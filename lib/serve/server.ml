module Json = Zodiac_util.Json

type config = {
  max_request_bytes : int;
  deadline_ms : int option;
  max_clients : int;
}

let default_config =
  { max_request_bytes = 1 lsl 20; deadline_ms = None; max_clients = 4 }

(* Bounded line reader: an oversized line is drained, never buffered,
   so a hostile client cannot balloon the daemon's memory. *)
let read_line_bounded ic limit =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> `Oversized
    | '\n' -> `Oversized
    | _ -> drain ()
  in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf > limit then drain ()
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

let respond oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let handle_line ?(config = default_config) session line =
  match Protocol.parse ~max_bytes:config.max_request_bytes line with
  | Error (id, e) -> Protocol.error_response ~id e
  | Ok { Protocol.id; verb } -> (
      match Session.handle_extra ?deadline_ms:config.deadline_ms session verb with
      | Ok (payload, extra) -> Protocol.ok_response ~extra ~id payload
      | Error e -> Protocol.error_response ~id e)

let serve_channels ?(config = default_config) session ic oc =
  let rec loop () =
    if Session.stopping session then ()
    else
      match read_line_bounded ic config.max_request_bytes with
      | `Eof -> ()
      | `Oversized ->
          respond oc
            (Protocol.error_response ~id:Json.Null
               {
                 Protocol.code = "request_too_large";
                 message =
                   Printf.sprintf "request line exceeds the %d-byte limit"
                     config.max_request_bytes;
               });
          loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
          respond oc (handle_line ~config session line);
          loop ()
  in
  loop ()

let serve_stdio ?config session =
  Session.connection_opened session;
  Fun.protect
    ~finally:(fun () -> Session.connection_closed session)
    (fun () -> serve_channels ?config session stdin stdout)

let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
  | _ ->
      invalid_arg
        (Printf.sprintf "serve: %s exists and is not a socket" path)

(* Admission queue between the accept loop and the worker domains.
   Bounded at [max_clients] *pending* connections (on top of the
   [max_clients] being served): past the bound the accept loop answers
   a structured [busy] error and closes — an explicit backpressure
   signal, never an accept-queue stall the client can't see. *)
type admission = {
  lock : Mutex.t;
  nonempty : Condition.t;
  pending : Unix.file_descr Queue.t;
  mutable closed : bool;
}

let make_admission () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    pending = Queue.create ();
    closed = false;
  }

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* [Some conn] if admitted, [None] past the bound. *)
let admit session adm ~bound conn =
  with_lock adm.lock (fun () ->
      if adm.closed || Queue.length adm.pending >= bound then None
      else begin
        Queue.push conn adm.pending;
        Session.set_queue_depth session (Queue.length adm.pending);
        Condition.signal adm.nonempty;
        Some conn
      end)

(* Blocks until a connection is pending or the queue is closed. *)
let take session adm =
  with_lock adm.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty adm.pending) then begin
          let conn = Queue.pop adm.pending in
          Session.set_queue_depth session (Queue.length adm.pending);
          Some conn
        end
        else if adm.closed then None
        else begin
          Condition.wait adm.nonempty adm.lock;
          wait ()
        end
      in
      wait ())

(* Drains the queue under the lock so each pending fd has exactly one
   owner: the shutdown path refuses the leftovers, and the woken
   workers find the queue empty and exit via [take]'s [None]. *)
let close_admission adm =
  with_lock adm.lock (fun () ->
      adm.closed <- true;
      let leftover = Queue.fold (fun acc conn -> conn :: acc) [] adm.pending in
      Queue.clear adm.pending;
      Condition.broadcast adm.nonempty;
      leftover)

let refuse conn code message =
  let oc = Unix.out_channel_of_descr conn in
  (try
     respond oc
       (Protocol.error_response ~id:Json.Null { Protocol.code; message })
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close conn with _ -> ()

(* Connections currently being served, so shutdown can unblock worker
   domains parked in [input_char] on an idle client. *)
type active = { alock : Mutex.t; mutable fds : Unix.file_descr list }

let worker session config adm active =
  let rec loop () =
    match take session adm with
    | None -> ()
    | Some conn when Session.stopping session ->
        (* Popped after a [shutdown] was handled: answer the still-
           queued client with the same structured refusal the accept-
           loop drain gives, instead of a silent close. *)
        refuse conn "shutting_down" "server is shutting down";
        loop ()
    | Some conn ->
        with_lock active.alock (fun () -> active.fds <- conn :: active.fds);
        Session.connection_opened session;
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        (try serve_channels ~config session ic oc
         with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with _ -> ());
        (* Deregister before closing: once the fd is closed its number
           can be reused, and the shutdown loop must never [shutdown]
           a descriptor that now belongs to someone else. *)
        with_lock active.alock (fun () ->
            active.fds <- List.filter (fun fd -> fd != conn) active.fds);
        (try Unix.close conn with _ -> ());
        Session.connection_closed session;
        loop ()
  in
  loop ()

let serve_socket ?(config = default_config) session ~path =
  (* A client that hangs up before its response would otherwise turn
     the write into a process-killing SIGPIPE; with it ignored the
     write fails with EPIPE, which the workers already swallow. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale_socket path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      try Unix.unlink path with _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      let max_clients = max 1 config.max_clients in
      Unix.listen sock (2 * max_clients);
      let adm = make_admission () in
      let active = { alock = Mutex.create (); fds = [] } in
      let workers =
        List.init max_clients (fun _ ->
            Domain.spawn (fun () -> worker session config adm active))
      in
      (* The accept loop polls so a [shutdown] handled by a worker is
         noticed within one select tick even with no new clients. *)
      let rec accept_loop () =
        if Session.stopping session then ()
        else begin
          (match Unix.select [ sock ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error _ -> ()
              | conn, _ -> (
                  match admit session adm ~bound:max_clients conn with
                  | Some _ -> ()
                  | None ->
                      refuse conn "busy"
                        (Printf.sprintf
                           "server at capacity (%d clients + %d queued); retry"
                           max_clients max_clients))));
          accept_loop ()
        end
      in
      accept_loop ();
      (* Shutdown: stop admitting, answer the still-queued connections
         with a structured error, then unblock workers parked on idle
         clients and join them. *)
      let leftover = close_admission adm in
      List.iter
        (fun conn -> refuse conn "shutting_down" "server is shutting down")
        leftover;
      Session.set_queue_depth session 0;
      with_lock active.alock (fun () ->
          List.iter
            (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
            active.fds);
      List.iter Domain.join workers)
