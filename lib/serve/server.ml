module Json = Zodiac_util.Json

type config = { max_request_bytes : int; deadline_ms : int option }

let default_config = { max_request_bytes = 1 lsl 20; deadline_ms = None }

(* Bounded line reader: an oversized line is drained, never buffered,
   so a hostile client cannot balloon the daemon's memory. *)
let read_line_bounded ic limit =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> `Oversized
    | '\n' -> `Oversized
    | _ -> drain ()
  in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf > limit then drain ()
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

let respond oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let handle_line ?(config = default_config) session line =
  match Protocol.parse ~max_bytes:config.max_request_bytes line with
  | Error (id, e) -> Protocol.error_response ~id e
  | Ok { Protocol.id; verb } -> (
      let started =
        match config.deadline_ms with
        | None -> 0.
        | Some _ -> Unix.gettimeofday ()
      in
      let result = Session.handle session verb in
      let overdue =
        match config.deadline_ms with
        | None -> false
        | Some ms -> (Unix.gettimeofday () -. started) *. 1000. > float_of_int ms
      in
      if overdue then
        Protocol.error_response ~id
          {
            Protocol.code = "deadline_exceeded";
            message =
              Printf.sprintf "request exceeded the %dms deadline"
                (Option.get config.deadline_ms);
          }
      else
        match result with
        | Ok payload -> Protocol.ok_response ~id payload
        | Error e -> Protocol.error_response ~id e)

let serve_channels ?(config = default_config) session ic oc =
  let rec loop () =
    if Session.stopping session then ()
    else
      match read_line_bounded ic config.max_request_bytes with
      | `Eof -> ()
      | `Oversized ->
          respond oc
            (Protocol.error_response ~id:Json.Null
               {
                 Protocol.code = "request_too_large";
                 message =
                   Printf.sprintf "request line exceeds the %d-byte limit"
                     config.max_request_bytes;
               });
          loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
          respond oc (handle_line ~config session line);
          loop ()
  in
  loop ()

let serve_stdio ?config session = serve_channels ?config session stdin stdout

let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
  | _ ->
      invalid_arg
        (Printf.sprintf "serve: %s exists and is not a socket" path)

let serve_socket ?config session ~path =
  remove_stale_socket path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      try Unix.unlink path with _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if Session.stopping session then ()
        else begin
          let conn, _ = Unix.accept sock in
          let ic = Unix.in_channel_of_descr conn in
          let oc = Unix.out_channel_of_descr conn in
          (try serve_channels ?config session ic oc
           with End_of_file | Sys_error _ -> ());
          (try flush oc with _ -> ());
          (try Unix.close conn with _ -> ());
          accept_loop ()
        end
      in
      accept_loop ())
