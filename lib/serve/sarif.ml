module Json = Zodiac_util.Json
module Lexer = Zodiac_hcl.Lexer

type finding = {
  rule_id : string;
  message : string;
  bindings : (string * string) list;
  explanation : string;
  file : string;
  line : int;
}

(* ---- resource -> line index ----------------------------------------- *)

type line_index = (string * string, int) Hashtbl.t

let plain_label = function
  | Lexer.Str [ Zodiac_hcl.Ast.Lit s ] -> Some s
  | Lexer.Ident s -> Some s
  | _ -> None

(* Top-level [resource "type" "name"] headers only: nested blocks never
   define resources, so brace depth gates the match. *)
let index_source src =
  let idx : line_index = Hashtbl.create 16 in
  (match Lexer.tokenize src with
  | exception Lexer.Lex_error _ -> ()
  | tokens ->
      let depth = ref 0 in
      let rec scan = function
        | [] -> ()
        | { Lexer.tok = Lexer.Lbrace; _ } :: rest ->
            incr depth;
            scan rest
        | { Lexer.tok = Lexer.Rbrace; _ } :: rest ->
            decr depth;
            scan rest
        | { Lexer.tok = Lexer.Ident "resource"; line }
          :: ({ Lexer.tok = t1; _ } as s1)
          :: ({ Lexer.tok = t2; _ } as s2)
          :: rest
          when !depth = 0 -> (
            match (plain_label t1, plain_label t2) with
            | Some rtype, Some rname ->
                if not (Hashtbl.mem idx (rtype, rname)) then
                  Hashtbl.replace idx (rtype, rname) line;
                (match
                   Option.bind (Zodiac_providers.Providers.of_tf_type rtype)
                     (fun p ->
                       p.Zodiac_provider.Provider.of_terraform rtype)
                 with
                | Some canonical ->
                    if not (Hashtbl.mem idx (canonical, rname)) then
                      Hashtbl.replace idx (canonical, rname) line
                | None -> ());
                scan rest
            | _ -> scan (s1 :: s2 :: rest))
        | _ :: rest -> scan rest
      in
      scan tokens);
  idx

let resource_line idx (id : Zodiac_iac.Resource.id) =
  match Hashtbl.find_opt idx (id.Zodiac_iac.Resource.rtype, id.rname) with
  | Some line -> line
  | None -> 1

(* ---- document ------------------------------------------------------- *)

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.rule_id b.rule_id in
      if c <> 0 then c else compare a.bindings b.bindings

let result_text f =
  let where =
    String.concat ", "
      (List.map (fun (var, id) -> Printf.sprintf "%s = %s" var id) f.bindings)
  in
  Printf.sprintf "%s — where %s; because %s" f.message where f.explanation

let document ?timestamp findings =
  let findings = List.sort_uniq compare_finding findings in
  let rules =
    List.sort_uniq compare
      (List.map (fun f -> (f.rule_id, f.message)) findings)
  in
  let rule_index id =
    let rec go i = function
      | [] -> -1
      | (rid, _) :: rest -> if String.equal rid id then i else go (i + 1) rest
    in
    go 0 rules
  in
  let rule_json (id, message) =
    Json.Obj
      [
        ("id", Json.String id);
        ("shortDescription", Json.Obj [ ("text", Json.String message) ]);
      ]
  in
  let result_json f =
    Json.Obj
      [
        ("ruleId", Json.String f.rule_id);
        ("ruleIndex", Json.Int (rule_index f.rule_id));
        ("level", Json.String "error");
        ("message", Json.Obj [ ("text", Json.String (result_text f)) ]);
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      [
                        ( "artifactLocation",
                          Json.Obj [ ("uri", Json.String f.file) ] );
                        ( "region",
                          Json.Obj [ ("startLine", Json.Int (max 1 f.line)) ] );
                      ] );
                ];
            ] );
      ]
  in
  let invocations =
    match timestamp with
    | None -> []
    | Some t ->
        [
          ( "invocations",
            Json.List
              [
                Json.Obj
                  [
                    ("executionSuccessful", Json.Bool true);
                    ("endTimeUtc", Json.String t);
                  ];
              ] );
        ]
  in
  Json.Obj
    [
      ("$schema", Json.String "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              ([
                 ( "tool",
                   Json.Obj
                     [
                       ( "driver",
                         Json.Obj
                           [
                             ("name", Json.String "zodiac");
                             ("version", Json.String "1.0.0");
                             ( "informationUri",
                               Json.String
                                 "https://github.com/zodiac/zodiac" );
                             ("rules", Json.List (List.map rule_json rules));
                           ] );
                     ] );
               ]
              @ invocations
              @ [ ("results", Json.List (List.map result_json findings)) ]);
          ] );
    ]

let to_string ?timestamp findings =
  Json.to_string ~pretty:true (document ?timestamp findings) ^ "\n"
