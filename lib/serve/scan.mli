(** Scanning logic shared by the one-shot CLI and the resident daemon.

    Both front ends funnel through this module, which is how the
    acceptance property — resident-daemon SARIF byte-identical to the
    one-shot CLI — holds by construction rather than by test luck. *)

type check_entry = {
  id : string;
  message : string;
  check : Zodiac_spec.Check.t;
}
(** One check to evaluate: stable id, human message, spec. *)

val ground_truth_entries :
  Zodiac_provider.Provider.t -> check_entry list
(** The provider's simulated-cloud ground-truth rule set (the [scan]
    default). *)

val checkset_entries : Zodiac_spec.Check.t list -> check_entry list
(** Entries for a validated check set loaded from [zodiac validate -o]
    output; the message is the check's printed spec. *)

val load_checks :
  Zodiac_provider.Provider.t ->
  string option ->
  (check_entry list, string) result
(** [None] -> the provider's ground truth; [Some file] ->
    {!Zodiac.Checkset.load}. *)

val scan_source :
  ?checkpoint:(unit -> unit) ->
  provider:Zodiac_provider.Provider.t ->
  checks:check_entry list ->
  file:string ->
  string ->
  (Sarif.finding list, string) result
(** Compile HCL source and evaluate every check, diagnosing each
    violating assignment. [file] is only metadata (the SARIF artifact
    URI and line-index scope). Compile failures come back as [Error].
    [checkpoint] is called between check evaluations; it may raise to
    abandon the scan (the cooperative deadline probe). *)

val scan_plan_source :
  ?checkpoint:(unit -> unit) ->
  provider:Zodiac_provider.Provider.t ->
  checks:check_entry list ->
  file:string ->
  string ->
  (Sarif.finding list, string) result
(** Like {!scan_source} but the input is Terraform plan JSON
    ([terraform show -json] output) decoded via {!Zodiac_hcl.Plan}.
    Plan JSON has no source positions, so findings anchor at line 1. *)

val scan_file :
  ?checkpoint:(unit -> unit) ->
  provider:Zodiac_provider.Provider.t ->
  checks:check_entry list ->
  string ->
  (Sarif.finding list, string) result
(** {!scan_source} on a file's contents. *)

val read_file : string -> (string, string) result
(** Whole-file read, [Error] on I/O failure — exposed so callers that
    cache by content fingerprint can read once and scan from source. *)

val hcl_files : string -> string list
(** [.tf]/[.hcl] files under a directory, recursive, sorted by path —
    the deterministic work list for [scan_directory]. *)

val scan_directory :
  ?jobs:int ->
  ?checkpoint:(unit -> unit) ->
  ?scan:(string -> (Sarif.finding list, string) result) ->
  provider:Zodiac_provider.Provider.t ->
  checks:check_entry list ->
  string ->
  (Sarif.finding list * (string * string) list, string) result
(** Scan every {!hcl_files} member, fanning the per-file scans onto the
    {!Zodiac_util.Parallel} domain pool. Findings aggregate across
    files; per-file compile failures are collected as [(file, error)]
    pairs rather than failing the batch. [Error] only when the
    directory itself is unreadable. [scan] overrides the per-file
    scanner (the daemon routes through its content-fingerprint cache);
    ordering and aggregation stay here either way. *)
