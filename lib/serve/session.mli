(** The resident daemon state: everything a one-shot scan pays for on
    every invocation — the compiled check registry (ground truth or a
    validated check set), the deployment engine with its α-canonical
    memo cache, a warm-start {!Zodiac_util.Cache} handle, and the
    content-fingerprint {!Scan_cache} — loaded once at [create] and
    shared by every connection.

    One session serves all concurrent connections, so its mutable
    surface is lock-partitioned: request/connection counters behind a
    state mutex, the deployment engine (whose memo table is not
    thread-safe) behind an engine mutex, and the scan cache locking
    internally. Request handling stays deterministic over that state
    plus the filesystem: the same request sequence against the same
    files produces the same response bytes, which is what makes the
    daemon byte-equivalent to the one-shot CLI — scan results come
    from the content-fingerprint cache only when the source bytes and
    check registry both match, so a hit is byte-identical to a fresh
    scan by construction. Directory and batch scans fan their per-file
    work onto the {!Zodiac_util.Parallel} domain pool; every request
    runs inside a [serve.<method>] {!Zodiac_util.Telemetry} span
    carrying finding/file counters. *)

type config = {
  provider : Zodiac_provider.Provider.t;
      (** session default backend. Each scan/validate request still
          resolves its own provider from the source's resource-type
          prefixes ({!Zodiac_providers.Providers.detect_source}); this
          is the fallback when no prefix matches, the engine's backend,
          and the provider named by [stats]/[list_checks]. *)
  checks_file : string option;
      (** validated check set to scan with; [None] = the resolved
          provider's ground truth *)
  cache_dir : string option;
      (** warm-start cache to keep resident; also persists the scan
          cache so a restarted daemon starts warm *)
  jobs : int;  (** domain-pool width for batched directory scans *)
  timestamps : bool;
      (** stamp SARIF invocations with wall-clock UTC time; off by
          default so responses are byte-stable *)
  engine : Zodiac_engine.Engine.config;  (** [validate]'s engine *)
}

val default_config : config

type t

val create :
  ?telemetry:Zodiac_util.Telemetry.t -> config -> (t, string) result
(** Load checks, open the cache, build the engine. [Error] when the
    check-set file is missing or malformed. *)

val checks : t -> Scan.check_entry list

val utc_now : unit -> string
(** RFC-3339 UTC wall-clock time — the [--timestamps] stamp. Shared
    with the CLI so both front ends format timestamps identically. *)

val stopping : t -> bool
(** Set once a [shutdown] request has been handled. Safe to poll from
    any domain. *)

val connection_opened : t -> unit
(** Transport hook: a connection was admitted ([connections_active]
    and [connections_total] in [stats]). *)

val connection_closed : t -> unit
(** Transport hook: an admitted connection finished. *)

val set_queue_depth : t -> int -> unit
(** Transport hook: current admission-queue depth ([queue_depth] in
    [stats]). *)

val handle_extra :
  ?deadline_ms:int ->
  t ->
  Protocol.verb ->
  (Zodiac_util.Json.t * (string * Zodiac_util.Json.t) list, Protocol.error)
  result
(** Like {!handle}, additionally returning envelope extras — response
    members the transport places beside ["result"], never inside it
    (the SARIF payload must stay byte-identical to the one-shot CLI).
    Today that is [content_fingerprint] on [scan_file] and
    [scan_terraform_plan]: the {!Scan_cache} key of the scanned bytes,
    an ETag-style validator clients can remember to skip resending
    unchanged content. *)

val handle :
  ?deadline_ms:int ->
  t ->
  Protocol.verb ->
  (Zodiac_util.Json.t, Protocol.error) result
(** Execute one request against the resident state. Never raises:
    handler exceptions surface as [internal_error]. [scan_file]'s
    result is the SARIF document itself — the same JSON value the
    one-shot CLI prints.

    [deadline_ms] is enforced while the request runs: scan and
    validate handlers probe a deadline checkpoint at their natural
    work boundaries (between check evaluations, between files, before
    a deployment) and an over-deadline request abandons its remaining
    work, discards partial findings before any counter or cache
    records them, and returns a [deadline_exceeded] error. A
    post-dispatch check backstops verbs with no checkpoints; when that
    backstop fires the work already ran to completion, so counters and
    the scan cache have recorded it — only the response is replaced
    (and [errors] bumped, matching the in-flight path). *)
