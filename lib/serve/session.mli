(** The resident daemon state: everything a one-shot scan pays for on
    every invocation — the compiled check registry (ground truth or a
    validated check set), the deployment engine with its α-canonical
    memo cache, and a warm-start {!Zodiac_util.Cache} handle — loaded
    once at [create] and reused by every request.

    Request handling is purely functional over that state plus the
    filesystem: the same request sequence against the same files
    produces the same response bytes, which is what makes the daemon
    byte-equivalent to the one-shot CLI. Directory scans batch their
    per-file work onto the {!Zodiac_util.Parallel} domain pool; every
    request runs inside a [serve.<method>] {!Zodiac_util.Telemetry}
    span carrying finding/file counters. *)

type config = {
  checks_file : string option;
      (** validated check set to scan with; [None] = ground truth *)
  cache_dir : string option;  (** warm-start cache to keep resident *)
  jobs : int;  (** domain-pool width for batched directory scans *)
  timestamps : bool;
      (** stamp SARIF invocations with wall-clock UTC time; off by
          default so responses are byte-stable *)
  engine : Zodiac_engine.Engine.config;  (** [validate]'s engine *)
}

val default_config : config

type t

val create :
  ?telemetry:Zodiac_util.Telemetry.t -> config -> (t, string) result
(** Load checks, open the cache, build the engine. [Error] when the
    check-set file is missing or malformed. *)

val checks : t -> Scan.check_entry list

val utc_now : unit -> string
(** RFC-3339 UTC wall-clock time — the [--timestamps] stamp. Shared
    with the CLI so both front ends format timestamps identically. *)

val stopping : t -> bool
(** Set once a [shutdown] request has been handled. *)

val handle :
  t -> Protocol.verb -> (Zodiac_util.Json.t, Protocol.error) result
(** Execute one request against the resident state. Never raises:
    handler exceptions surface as [internal_error]. [scan_file]'s
    result is the SARIF document itself — the same JSON value the
    one-shot CLI prints. *)
