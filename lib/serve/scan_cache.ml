module Memo = Zodiac_engine.Memo
module Codec = Zodiac_util.Codec
module Cache = Zodiac_util.Cache

let stage = "scan"

type t = {
  memo : Sarif.finding list Memo.t;
  disk : Cache.t option;
  registry_fp : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

(* The registry fingerprint folds in everything a finding can carry
   from the check set: a changed id, message or spec body must miss. *)
let registry_fingerprint checks =
  Codec.fingerprint
    ("scan-registry"
    :: List.concat_map
         (fun (e : Scan.check_entry) ->
           [ e.id; e.message; Zodiac_spec.Spec_printer.to_string e.check ])
         checks)

let create ?(capacity = 4096) ?disk ~checks () =
  {
    memo = Memo.create ~capacity ();
    disk;
    registry_fp = registry_fingerprint checks;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
  }

(* [tag] distinguishes otherwise-identical content scanned under a
   different provider (the per-request provider fingerprint). *)
let key t ?(tag = "") ~mode src =
  Codec.fingerprint [ "scan-content"; tag; mode; t.registry_fp; src ]

let fingerprint t ?tag ~mode src = key t ?tag ~mode src

(* Findings are cached path-stripped: [finding.file] carries the
   request path, and the same bytes scanned under two paths must hit
   the same entry. The caller's path is reattached on lookup. *)
let write_finding sink (f : Sarif.finding) =
  Codec.write_string sink f.rule_id;
  Codec.write_string sink f.message;
  Codec.write_list
    (fun sink (k, v) ->
      Codec.write_string sink k;
      Codec.write_string sink v)
    sink f.bindings;
  Codec.write_string sink f.explanation;
  Codec.write_int sink f.line

let read_finding src =
  let rule_id = Codec.read_string src in
  let message = Codec.read_string src in
  let bindings =
    Codec.read_list
      (fun src ->
        let k = Codec.read_string src in
        let v = Codec.read_string src in
        (k, v))
      src
  in
  let explanation = Codec.read_string src in
  let line = Codec.read_int src in
  { Sarif.rule_id; message; bindings; explanation; file = ""; line }

let strip findings =
  List.map (fun f -> { f with Sarif.file = "" }) findings

let reattach ~file findings =
  List.map (fun f -> { f with Sarif.file }) findings

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ?tag ~mode ~file src =
  with_lock t (fun () ->
      let key = key t ?tag ~mode src in
      match Memo.find t.memo key with
      | Some findings ->
          t.hits <- t.hits + 1;
          Some (reattach ~file findings)
      | None -> (
          let from_disk =
            match t.disk with
            | None -> None
            | Some disk ->
                Cache.find disk ~stage ~key (Codec.read_list read_finding)
          in
          match from_disk with
          | Some findings ->
              Memo.add t.memo key findings;
              t.hits <- t.hits + 1;
              Some (reattach ~file findings)
          | None ->
              t.misses <- t.misses + 1;
              None))

let add t ?tag ~mode src findings =
  with_lock t (fun () ->
      let key = key t ?tag ~mode src in
      let stripped = strip findings in
      Memo.add t.memo key stripped;
      match t.disk with
      | None -> ()
      | Some disk ->
          Cache.store disk ~stage ~key (fun sink ->
              Codec.write_list write_finding sink stripped))

(* The cached-scan composition used by every daemon verb: lookup, else
   run the underlying scanner and remember only successful results
   (errors must re-run — they may be transient I/O). *)
let scan t ?tag ~mode ~file src scanner =
  match find t ?tag ~mode ~file src with
  | Some findings -> Ok findings
  | None -> (
      match scanner () with
      | Ok findings ->
          add t ?tag ~mode src findings;
          Ok findings
      | Error _ as e -> e)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let entries t = with_lock t (fun () -> Memo.length t.memo)
