module Json = Zodiac_util.Json

type verb =
  | Scan_file of { path : string; source : string option }
  | Scan_directory of { dir : string }
  | Scan_batch of { files : (string * string option) list }
  | Scan_plan of { path : string; source : string option }
  | List_checks
  | Validate of { path : string; source : string option }
  | Ping
  | Stats
  | Shutdown

type request = { id : Json.t; verb : verb }

type error = { code : string; message : string }

let verb_name = function
  | Scan_file _ -> "scan_file"
  | Scan_directory _ -> "scan_directory"
  | Scan_batch _ -> "scan_batch"
  | Scan_plan _ -> "scan_terraform_plan"
  | List_checks -> "list_checks"
  | Validate _ -> "validate"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let err code message = { code; message }

let string_param params name =
  match Json.string_value (Json.member name params) with
  | Some s -> Ok s
  | None ->
      Error (err "missing_param" (Printf.sprintf "missing string param %S" name))

let opt_string_param params name =
  match Json.member name params with
  | Json.Null -> Ok None
  | v -> (
      match Json.string_value v with
      | Some s -> Ok (Some s)
      | None ->
          Error
            (err "invalid_request" (Printf.sprintf "param %S must be a string" name)))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* [scan_batch] files: a non-empty list of {"path": ..., "source"?: ...}
   objects, validated up front so a malformed entry fails the whole
   request before any scanning starts. *)
let batch_files params =
  match Json.member "files" params with
  | Json.List [] -> Error (err "invalid_request" "\"files\" must not be empty")
  | Json.List entries ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | (Json.Obj _ as entry) :: rest ->
            let* path = string_param entry "path" in
            let* source = opt_string_param entry "source" in
            collect ((path, source) :: acc) rest
        | _ ->
            Error
              (err "invalid_request"
                 "each \"files\" entry must be an object with a \"path\"")
      in
      collect [] entries
  | _ ->
      Error (err "missing_param" "missing list param \"files\"")

let parse_verb meth params =
  match meth with
  | "scan_file" ->
      let* path = string_param params "path" in
      let* source = opt_string_param params "source" in
      Ok (Scan_file { path; source })
  | "scan_directory" ->
      let* dir = string_param params "dir" in
      Ok (Scan_directory { dir })
  | "scan_batch" ->
      let* files = batch_files params in
      Ok (Scan_batch { files })
  | "scan_terraform_plan" ->
      let* path = string_param params "path" in
      let* source = opt_string_param params "source" in
      Ok (Scan_plan { path; source })
  | "list_checks" -> Ok List_checks
  | "validate" ->
      let* path = string_param params "path" in
      let* source = opt_string_param params "source" in
      Ok (Validate { path; source })
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | other -> Error (err "unknown_method" (Printf.sprintf "unknown method %S" other))

let parse ~max_bytes line =
  if String.length line > max_bytes then
    Error
      ( Json.Null,
        err "request_too_large"
          (Printf.sprintf "request of %d bytes exceeds the %d-byte limit"
             (String.length line) max_bytes) )
  else
    match Json.of_string_result ~max_bytes line with
    | Error msg -> Error (Json.Null, err "parse_error" msg)
    | Ok json -> (
        match json with
        | Json.Obj _ -> (
            let id = Json.member "id" json in
            match Json.string_value (Json.member "method" json) with
            | None ->
                Error (id, err "invalid_request" "request needs a string \"method\"")
            | Some meth -> (
                let params = Json.member "params" json in
                match parse_verb meth params with
                | Ok verb -> Ok { id; verb }
                | Error e -> Error (id, e)))
        | _ -> Error (Json.Null, err "invalid_request" "request must be a JSON object"))

let ok_response ?(extra = []) ~id result =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool true); ("result", result) ] @ extra)

let error_response ~id { code; message } =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.String code); ("message", Json.String message) ]
      );
    ]
