module Json = Zodiac_util.Json
module Telemetry = Zodiac_util.Telemetry
module Cache = Zodiac_util.Cache
module Engine = Zodiac_engine.Engine

type config = {
  checks_file : string option;
  cache_dir : string option;
  jobs : int;
  timestamps : bool;
  engine : Engine.config;
}

let default_config =
  {
    checks_file = None;
    cache_dir = None;
    jobs = 1;
    timestamps = false;
    engine = Engine.default_config;
  }

type t = {
  config : config;
  checks : Scan.check_entry list;
  engine : Engine.t;
  cache : Cache.t option;
  telemetry : Telemetry.t;
  requests : (string, int) Hashtbl.t;  (** method -> count *)
  mutable findings_total : int;
  mutable files_scanned : int;
  mutable errors_total : int;
  mutable stop : bool;
}

let create ?(telemetry = Telemetry.null) config =
  match Scan.load_checks config.checks_file with
  | Error e -> Error e
  | Ok checks ->
      Ok
        {
          config;
          checks;
          engine = Engine.create ~config:config.engine ();
          cache =
            Option.map (fun dir -> Cache.create ~dir ()) config.cache_dir;
          telemetry;
          requests = Hashtbl.create 8;
          findings_total = 0;
          files_scanned = 0;
          errors_total = 0;
          stop = false;
        }

let checks t = t.checks

let stopping t = t.stop

(* RFC-3339 UTC from the wall clock; only reachable when the operator
   opted into [timestamps]. *)
let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let timestamp t = if t.config.timestamps then Some (utc_now ()) else None

let sarif_of_findings t findings =
  match timestamp t with
  | None -> Sarif.document findings
  | Some ts -> Sarif.document ~timestamp:ts findings

let scan_error e = { Protocol.code = "scan_error"; message = e }

let do_scan_file t ~path ~source =
  let result =
    match source with
    | Some src -> Scan.scan_source ~checks:t.checks ~file:path src
    | None -> Scan.scan_file ~checks:t.checks path
  in
  match result with
  | Error e ->
      t.errors_total <- t.errors_total + 1;
      Error (scan_error e)
  | Ok findings ->
      t.files_scanned <- t.files_scanned + 1;
      t.findings_total <- t.findings_total + List.length findings;
      Telemetry.count t.telemetry "serve.findings" (List.length findings);
      Ok (sarif_of_findings t findings)

let do_scan_directory t ~dir =
  match Scan.scan_directory ~jobs:t.config.jobs ~checks:t.checks dir with
  | Error e ->
      t.errors_total <- t.errors_total + 1;
      Error (scan_error e)
  | Ok (findings, errors) ->
      let files = Scan.hcl_files dir in
      t.files_scanned <- t.files_scanned + List.length files;
      t.findings_total <- t.findings_total + List.length findings;
      t.errors_total <- t.errors_total + List.length errors;
      Telemetry.count t.telemetry "serve.findings" (List.length findings);
      Telemetry.count t.telemetry "serve.files" (List.length files);
      Ok
        (Json.Obj
           [
             ("sarif", sarif_of_findings t findings);
             ("files_scanned", Json.Int (List.length files));
             ( "errors",
               Json.List
                 (List.map
                    (fun (file, e) ->
                      Json.Obj
                        [
                          ("file", Json.String file);
                          ("message", Json.String e);
                        ])
                    errors) );
           ])

let do_list_checks t =
  let kind =
    match t.config.checks_file with None -> "ground-truth" | Some _ -> "validated"
  in
  Ok
    (Json.Obj
       [
         ("kind", Json.String kind);
         ("count", Json.Int (List.length t.checks));
         ( "checks",
           Json.List
             (List.map
                (fun (e : Scan.check_entry) ->
                  Json.Obj
                    [
                      ("id", Json.String e.Scan.id);
                      ("message", Json.String e.Scan.message);
                      ( "spec",
                        Json.String
                          (Zodiac_spec.Spec_printer.to_string e.Scan.check) );
                    ])
                t.checks) );
       ])

let id_json rid = Json.String (Zodiac_iac.Resource.id_to_string rid)

let failure_json (f : Zodiac_cloud.Arm.failure) =
  Json.Obj
    [
      ("resource", id_json f.Zodiac_cloud.Arm.resource);
      ( "phase",
        Json.String (Zodiac_cloud.Rules.phase_to_string f.Zodiac_cloud.Arm.phase)
      );
      ("rule_id", Json.String f.Zodiac_cloud.Arm.rule_id);
      ("message", Json.String f.Zodiac_cloud.Arm.message);
    ]

let do_validate t ~path ~source =
  let compiled =
    match source with
    | Some src -> (
        match
          Zodiac_hcl.Compile.compile_string
            ~type_map:Zodiac_azure.Catalog.of_terraform src
        with
        | Ok (prog, _) -> Ok prog
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
    | None -> Zodiac.Registry.compile_file path
  in
  match compiled with
  | Error e ->
      t.errors_total <- t.errors_total + 1;
      Error { Protocol.code = "validate_error"; message = e }
  | Ok prog -> (
      match Engine.deploy t.engine prog with
      | Error e ->
          Ok
            (Json.Obj
               [
                 ("deployable", Json.Bool false);
                 ( "abandoned",
                   Json.String (Zodiac_engine.Client.error_to_string e) );
               ])
      | Ok outcome ->
          let open Zodiac_cloud.Arm in
          Telemetry.count t.telemetry "serve.deployments" 1;
          Ok
            (Json.Obj
               [
                 ("deployable", Json.Bool (success outcome));
                 ( "deployed",
                   Json.List (List.map id_json outcome.deployed) );
                 ( "failure",
                   match outcome.failure with
                   | None -> Json.Null
                   | Some f -> failure_json f );
                 ("halted", Json.List (List.map id_json outcome.halted));
                 ( "post_sync_issues",
                   Json.List (List.map failure_json outcome.post_sync_issues) );
               ]))

let do_stats t =
  let requests =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.requests [])
  in
  let cache =
    match t.cache with
    | None -> Json.Null
    | Some cache ->
        let s = Cache.stats cache in
        Json.Obj
          [
            ("dir", Json.String (Cache.dir cache));
            ("hits", Json.Int s.Cache.hits);
            ("misses", Json.Int s.Cache.misses);
            ("writes", Json.Int s.Cache.writes);
          ]
  in
  let engine =
    let s = Engine.stats t.engine in
    Json.Obj
      [
        ("requests", Json.Int s.Zodiac_engine.Stats.requests);
        ("attempts", Json.Int s.Zodiac_engine.Stats.attempts);
        ("retries", Json.Int s.Zodiac_engine.Stats.retries);
        ("memo_hits", Json.Int s.Zodiac_engine.Stats.cache_hits);
        ("memo_entries", Json.Int (Engine.memo_entries t.engine));
      ]
  in
  (* Peak RSS is a render-time probe: a gauge of this process, never
     part of telemetry counters or cached artifacts. Null off-Linux. *)
  let peak_rss =
    match Zodiac_util.Rss.peak_rss_kb () with
    | None -> Json.Null
    | Some kb -> Json.Int kb
  in
  Ok
    (Json.Obj
       [
         ("requests", Json.Obj requests);
         ("files_scanned", Json.Int t.files_scanned);
         ("findings", Json.Int t.findings_total);
         ("errors", Json.Int t.errors_total);
         ("checks_loaded", Json.Int (List.length t.checks));
         ("jobs", Json.Int t.config.jobs);
         ("peak_rss_kb", peak_rss);
         ("engine", engine);
         ("cache", cache);
       ])

let dispatch t verb =
  match verb with
  | Protocol.Scan_file { path; source } -> do_scan_file t ~path ~source
  | Protocol.Scan_directory { dir } -> do_scan_directory t ~dir
  | Protocol.List_checks -> do_list_checks t
  | Protocol.Validate { path; source } -> do_validate t ~path ~source
  | Protocol.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Stats -> do_stats t
  | Protocol.Shutdown ->
      t.stop <- true;
      Ok (Json.Obj [ ("stopping", Json.Bool true) ])

let handle t verb =
  let name = Protocol.verb_name verb in
  Hashtbl.replace t.requests name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.requests name));
  Telemetry.with_span t.telemetry ("serve." ^ name) (fun () ->
      match dispatch t verb with
      | result -> result
      | exception exn ->
          t.errors_total <- t.errors_total + 1;
          Error
            {
              Protocol.code = "internal_error";
              message = Printexc.to_string exn;
            })
