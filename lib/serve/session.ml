module Json = Zodiac_util.Json
module Telemetry = Zodiac_util.Telemetry
module Cache = Zodiac_util.Cache
module Engine = Zodiac_engine.Engine
module Provider = Zodiac_provider.Provider
module Providers = Zodiac_providers.Providers

type config = {
  provider : Provider.t;  (** session default; requests may override *)
  checks_file : string option;
  cache_dir : string option;
  jobs : int;
  timestamps : bool;
  engine : Engine.config;
}

let default_config =
  {
    provider = Providers.default;
    checks_file = None;
    cache_dir = None;
    jobs = 1;
    timestamps = false;
    engine = Engine.default_config;
  }

(* One session is shared by every connection the server accepts, so
   the mutable surface splits into three independently-locked parts:
   [state_lock] guards the request/connection counters, [engine_lock]
   serializes the deployment engine (its memo table is not
   thread-safe), and the scan cache locks internally. Handlers hold at
   most one lock at a time — no ordering to get wrong. *)
type t = {
  config : config;
  provider : Provider.t;
  checks : Scan.check_entry list;
  gt_checks : (string * Scan.check_entry list) list;
      (** ground-truth entries per linked provider — the per-request
          check sets when no validated file was loaded *)
  engine : Engine.t;
  engine_lock : Mutex.t;
  cache : Cache.t option;
  scan_cache : Scan_cache.t;
  telemetry : Telemetry.t;
  state_lock : Mutex.t;
  requests : (string, int) Hashtbl.t;  (** method -> count *)
  mutable findings_total : int;
  mutable files_scanned : int;
  mutable errors_total : int;
  mutable connections_active : int;
  mutable connections_total : int;
  mutable queue_depth : int;
  stop : bool Atomic.t;
}

let create ?(telemetry = Telemetry.null) (config : config) =
  match Scan.load_checks config.provider config.checks_file with
  | Error e -> Error e
  | Ok checks ->
      let cache =
        Option.map (fun dir -> Cache.create ~dir ()) config.cache_dir
      in
      let gt_checks =
        match config.checks_file with
        | Some _ -> []
        | None ->
            List.map
              (fun p -> (p.Provider.name, Scan.ground_truth_entries p))
              Providers.all
      in
      Ok
        {
          config;
          provider = config.provider;
          checks;
          gt_checks;
          engine = Engine.create ~provider:config.provider ~config:config.engine ();
          engine_lock = Mutex.create ();
          cache;
          scan_cache = Scan_cache.create ?disk:cache ~checks ();
          telemetry;
          state_lock = Mutex.create ();
          requests = Hashtbl.create 8;
          findings_total = 0;
          files_scanned = 0;
          errors_total = 0;
          connections_active = 0;
          connections_total = 0;
          queue_depth = 0;
          stop = Atomic.make false;
        }

let checks t = t.checks

let stopping t = Atomic.get t.stop

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let with_state t f = with_lock t.state_lock f

let connection_opened t =
  with_state t (fun () ->
      t.connections_active <- t.connections_active + 1;
      t.connections_total <- t.connections_total + 1)

let connection_closed t =
  with_state t (fun () -> t.connections_active <- t.connections_active - 1)

let set_queue_depth t depth = with_state t (fun () -> t.queue_depth <- depth)

(* RFC-3339 UTC from the wall clock; only reachable when the operator
   opted into [timestamps]. *)
let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let timestamp t = if t.config.timestamps then Some (utc_now ()) else None

let sarif_of_findings t findings =
  match timestamp t with
  | None -> Sarif.document findings
  | Some ts -> Sarif.document ~timestamp:ts findings

let scan_error e = { Protocol.code = "scan_error"; message = e }

let bump_errors ?(n = 1) t =
  with_state t (fun () -> t.errors_total <- t.errors_total + n)

let record_scanned t ~files ~findings =
  with_state t (fun () ->
      t.files_scanned <- t.files_scanned + files;
      t.findings_total <- t.findings_total + findings)

(* Per-request provider resolution: the resource-type prefixes in the
   source pick the backend; the session provider is the fallback for
   sources that name no known prefix. *)
let resolve t src =
  match Providers.detect_source src with Some p -> p | None -> t.provider

(* With a validated check set loaded, every request uses it; in
   ground-truth mode each request gets its resolved provider's rules. *)
let checks_for t provider =
  match t.config.checks_file with
  | Some _ -> t.checks
  | None -> (
      match List.assoc_opt provider.Provider.name t.gt_checks with
      | Some entries -> entries
      | None -> t.checks)

(* Every scan funnels through the content-fingerprint cache: same
   bytes + same registry + same resolved provider = cached findings,
   path reattached. The underlying scanner still sees the deadline
   checkpoint. *)
let cached_scan ?checkpoint t ~mode ~file src =
  let provider = resolve t src in
  let checks = checks_for t provider in
  let tag = Provider.fingerprint provider in
  Scan_cache.scan t.scan_cache ~tag ~mode ~file src (fun () ->
      match mode with
      | "plan" -> Scan.scan_plan_source ?checkpoint ~provider ~checks ~file src
      | _ -> Scan.scan_source ?checkpoint ~provider ~checks ~file src)

let scan_path ?checkpoint t ~mode ~path ~source =
  match source with
  | Some src -> cached_scan ?checkpoint t ~mode ~file:path src
  | None -> (
      match Scan.read_file path with
      | Error e -> Error e
      | Ok src -> cached_scan ?checkpoint t ~mode ~file:path src)

(* Single-content scans resolve their source bytes up front: the same
   bytes feed the scan and the [content_fingerprint] validator the
   response envelope carries (the {!Scan_cache} key — an ETag clients
   can use to skip resending unchanged content). *)
let do_scan_one ?checkpoint t ~mode ~path ~source =
  let resolved =
    match source with Some src -> Ok src | None -> Scan.read_file path
  in
  match resolved with
  | Error e ->
      bump_errors t;
      Error (scan_error e)
  | Ok src -> (
      match cached_scan ?checkpoint t ~mode ~file:path src with
      | Error e ->
          bump_errors t;
          Error (scan_error e)
      | Ok findings ->
          record_scanned t ~files:1 ~findings:(List.length findings);
          Telemetry.count t.telemetry "serve.findings" (List.length findings);
          Ok
            ( sarif_of_findings t findings,
              [
                ( "content_fingerprint",
                  Json.String
                    (Scan_cache.fingerprint t.scan_cache
                       ~tag:(Provider.fingerprint (resolve t src))
                       ~mode src) );
              ] ))

let do_scan_directory ?checkpoint t ~dir =
  let scan file =
    match Scan.read_file file with
    | Error e -> Error e
    | Ok src -> cached_scan ?checkpoint t ~mode:"hcl" ~file src
  in
  match
    Scan.scan_directory ~jobs:t.config.jobs ?checkpoint ~scan
      ~provider:t.provider ~checks:t.checks dir
  with
  | Error e ->
      bump_errors t;
      Error (scan_error e)
  | Ok (findings, errors) ->
      let files = Scan.hcl_files dir in
      record_scanned t ~files:(List.length files)
        ~findings:(List.length findings);
      bump_errors ~n:(List.length errors) t;
      Telemetry.count t.telemetry "serve.findings" (List.length findings);
      Telemetry.count t.telemetry "serve.files" (List.length files);
      Ok
        (Json.Obj
           [
             ("sarif", sarif_of_findings t findings);
             ("files_scanned", Json.Int (List.length files));
             ( "errors",
               Json.List
                 (List.map
                    (fun (file, e) ->
                      Json.Obj
                        [
                          ("file", Json.String file);
                          ("message", Json.String e);
                        ])
                    errors) );
           ])

(* N files, one SARIF run per file, answered as one response in
   request order (deterministic regardless of which pool domain
   finished first). Per-file failures don't fail the batch. *)
let do_scan_batch ?checkpoint t ~files =
  let results =
    Zodiac_util.Parallel.map ~jobs:t.config.jobs
      (fun (path, source) ->
        (path, scan_path ?checkpoint t ~mode:"hcl" ~path ~source))
      files
  in
  let scanned, errors, findings =
    List.fold_left
      (fun (scanned, errors, findings) (_, result) ->
        match result with
        | Ok fs -> (scanned + 1, errors, findings + List.length fs)
        | Error _ -> (scanned, errors + 1, findings))
      (0, 0, 0) results
  in
  record_scanned t ~files:scanned ~findings;
  bump_errors ~n:errors t;
  Telemetry.count t.telemetry "serve.findings" findings;
  Telemetry.count t.telemetry "serve.files" scanned;
  Ok
    (Json.Obj
       [
         ( "results",
           Json.List
             (List.map
                (fun (path, result) ->
                  Json.Obj
                    (("path", Json.String path)
                    ::
                    (match result with
                    | Ok fs -> [ ("sarif", sarif_of_findings t fs) ]
                    | Error e -> [ ("error", Json.String e) ])))
                results) );
         ("files_scanned", Json.Int scanned);
         ("errors", Json.Int errors);
       ])

let do_list_checks t =
  let kind =
    match t.config.checks_file with None -> "ground-truth" | Some _ -> "validated"
  in
  Ok
    (Json.Obj
       [
         ("provider", Json.String t.provider.Provider.name);
         ("kind", Json.String kind);
         ("count", Json.Int (List.length t.checks));
         ( "checks",
           Json.List
             (List.map
                (fun (e : Scan.check_entry) ->
                  Json.Obj
                    [
                      ("id", Json.String e.Scan.id);
                      ("message", Json.String e.Scan.message);
                      ( "spec",
                        Json.String
                          (Zodiac_spec.Spec_printer.to_string e.Scan.check) );
                    ])
                t.checks) );
       ])

let id_json rid = Json.String (Zodiac_iac.Resource.id_to_string rid)

let failure_json (f : Zodiac_cloud.Arm.failure) =
  Json.Obj
    [
      ("resource", id_json f.Zodiac_cloud.Arm.resource);
      ( "phase",
        Json.String (Zodiac_cloud.Rules.phase_to_string f.Zodiac_cloud.Arm.phase)
      );
      ("rule_id", Json.String f.Zodiac_cloud.Arm.rule_id);
      ("message", Json.String f.Zodiac_cloud.Arm.message);
    ]

let do_validate ?checkpoint t ~path ~source =
  let resolved =
    match source with Some src -> Ok src | None -> Scan.read_file path
  in
  let compiled =
    match resolved with
    | Error e -> Error e
    | Ok src -> (
        let provider = resolve t src in
        match
          Zodiac_hcl.Compile.compile_string
            ~type_map:provider.Provider.of_terraform src
        with
        | Ok (prog, _) -> Ok (provider, prog)
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
  in
  match compiled with
  | Error e ->
      bump_errors t;
      Error { Protocol.code = "validate_error"; message = e }
  | Ok (provider, prog) -> (
      (match checkpoint with None -> () | Some probe -> probe ());
      (* The memoizing engine is bound to the session provider; a
         request resolved to another backend deploys straight through
         its simulator instead (no memo, same outcome shape). *)
      let deploy () =
        if String.equal provider.Provider.name t.provider.Provider.name then
          with_lock t.engine_lock (fun () -> Engine.deploy t.engine prog)
        else Ok (Zodiac_cloud.Arm.deploy ~provider prog)
      in
      match deploy () with
      | Error e ->
          Ok
            (Json.Obj
               [
                 ("deployable", Json.Bool false);
                 ( "abandoned",
                   Json.String (Zodiac_engine.Client.error_to_string e) );
               ])
      | Ok outcome ->
          let open Zodiac_cloud.Arm in
          Telemetry.count t.telemetry "serve.deployments" 1;
          Ok
            (Json.Obj
               [
                 ("deployable", Json.Bool (success outcome));
                 ( "deployed",
                   Json.List (List.map id_json outcome.deployed) );
                 ( "failure",
                   match outcome.failure with
                   | None -> Json.Null
                   | Some f -> failure_json f );
                 ("halted", Json.List (List.map id_json outcome.halted));
                 ( "post_sync_issues",
                   Json.List (List.map failure_json outcome.post_sync_issues) );
               ]))

let do_stats t =
  let requests, files_scanned, findings_total, errors_total, conn_active,
      conn_total, queue_depth =
    with_state t (fun () ->
        ( List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.requests []),
          t.files_scanned,
          t.findings_total,
          t.errors_total,
          t.connections_active,
          t.connections_total,
          t.queue_depth ))
  in
  let cache =
    match t.cache with
    | None -> Json.Null
    | Some cache ->
        let s = Cache.stats cache in
        Json.Obj
          [
            ("dir", Json.String (Cache.dir cache));
            ("hits", Json.Int s.Cache.hits);
            ("misses", Json.Int s.Cache.misses);
            ("writes", Json.Int s.Cache.writes);
            ("write_failures", Json.Int s.Cache.write_failures);
          ]
  in
  let scan_cache =
    Json.Obj
      [
        ("hits", Json.Int (Scan_cache.hits t.scan_cache));
        ("misses", Json.Int (Scan_cache.misses t.scan_cache));
        ("entries", Json.Int (Scan_cache.entries t.scan_cache));
      ]
  in
  let engine =
    with_lock t.engine_lock (fun () ->
        let s = Engine.stats t.engine in
        Json.Obj
          [
            ("requests", Json.Int s.Zodiac_engine.Stats.requests);
            ("attempts", Json.Int s.Zodiac_engine.Stats.attempts);
            ("retries", Json.Int s.Zodiac_engine.Stats.retries);
            ("memo_hits", Json.Int s.Zodiac_engine.Stats.cache_hits);
            ("memo_entries", Json.Int (Engine.memo_entries t.engine));
          ])
  in
  (* Peak RSS is a render-time probe: a gauge of this process, never
     part of telemetry counters or cached artifacts. Null off-Linux. *)
  let peak_rss =
    match Zodiac_util.Rss.peak_rss_kb () with
    | None -> Json.Null
    | Some kb -> Json.Int kb
  in
  Ok
    (Json.Obj
       [
         ("requests", Json.Obj requests);
         ("files_scanned", Json.Int files_scanned);
         ("findings", Json.Int findings_total);
         ("errors", Json.Int errors_total);
         ("connections_active", Json.Int conn_active);
         ("connections_total", Json.Int conn_total);
         ("queue_depth", Json.Int queue_depth);
         ("provider", Json.String t.provider.Provider.name);
         ("checks_loaded", Json.Int (List.length t.checks));
         ("jobs", Json.Int t.config.jobs);
         ("peak_rss_kb", peak_rss);
         ("scan_cache", scan_cache);
         ("engine", engine);
         ("cache", cache);
       ])

(* Dispatch yields the result payload plus envelope extras — response
   members that ride beside ["result"] (never inside it, so the SARIF
   payload stays byte-identical to the one-shot CLI's). *)
let dispatch ?checkpoint t verb =
  let plain = Result.map (fun json -> (json, [])) in
  match verb with
  | Protocol.Scan_file { path; source } ->
      do_scan_one ?checkpoint t ~mode:"hcl" ~path ~source
  | Protocol.Scan_plan { path; source } ->
      do_scan_one ?checkpoint t ~mode:"plan" ~path ~source
  | Protocol.Scan_directory { dir } ->
      plain (do_scan_directory ?checkpoint t ~dir)
  | Protocol.Scan_batch { files } -> plain (do_scan_batch ?checkpoint t ~files)
  | Protocol.List_checks -> plain (do_list_checks t)
  | Protocol.Validate { path; source } ->
      plain (do_validate ?checkpoint t ~path ~source)
  | Protocol.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ], [])
  | Protocol.Stats -> plain (do_stats t)
  | Protocol.Shutdown ->
      Atomic.set t.stop true;
      Ok (Json.Obj [ ("stopping", Json.Bool true) ], [])

exception Deadline_exceeded

let deadline_error ms =
  {
    Protocol.code = "deadline_exceeded";
    message = Printf.sprintf "request exceeded the %d ms deadline" ms;
  }

let handle_extra ?deadline_ms t verb =
  let name = Protocol.verb_name verb in
  with_state t (fun () ->
      Hashtbl.replace t.requests name
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.requests name)));
  (* The deadline is enforced *while* the request runs: [checkpoint]
     raises at the natural work boundaries (between checks, between
     files, before a deployment), so an over-deadline scan abandons
     its remaining work and its partial findings are dropped before
     any counter or cache records them. The post-dispatch check is
     only a backstop for verbs with no checkpoints. *)
  let start = Unix.gettimeofday () in
  let checkpoint =
    match deadline_ms with
    | None -> None
    | Some ms ->
        let limit = float_of_int ms /. 1000. in
        Some
          (fun () ->
            if Unix.gettimeofday () -. start > limit then
              raise Deadline_exceeded)
  in
  let overdue () =
    match deadline_ms with
    | None -> false
    | Some ms -> (Unix.gettimeofday () -. start) *. 1000. > float_of_int ms
  in
  Telemetry.with_span t.telemetry ("serve." ^ name) (fun () ->
      match dispatch ?checkpoint t verb with
      | Ok _ when overdue () ->
          (* Checkpoint-free verb finished past the deadline: the work
             already ran to completion (counters/cache recorded it),
             but the client still gets the structured error, counted
             like the in-flight deadline path. *)
          bump_errors t;
          Error (deadline_error (Option.get deadline_ms))
      | result -> result
      | exception Deadline_exceeded ->
          bump_errors t;
          Error (deadline_error (Option.get deadline_ms))
      | exception exn ->
          bump_errors t;
          Error
            {
              Protocol.code = "internal_error";
              message = Printexc.to_string exn;
            })

let handle ?deadline_ms t verb =
  Result.map fst (handle_extra ?deadline_ms t verb)
