module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Diagnose = Zodiac_spec.Diagnose
module Graph = Zodiac_iac.Graph
module Provider = Zodiac_provider.Provider

type check_entry = { id : string; message : string; check : Check.t }

let ground_truth_entries provider =
  List.map
    (fun (rule : Zodiac_cloud.Rules.t) ->
      {
        id = rule.Zodiac_cloud.Rules.rule_id;
        message = rule.Zodiac_cloud.Rules.message;
        check = rule.Zodiac_cloud.Rules.check;
      })
    (provider.Provider.ground_truth ())

let checkset_entries checks =
  List.map
    (fun (c : Check.t) ->
      {
        id = c.Check.cid;
        message = Zodiac_spec.Spec_printer.to_string c;
        check = c;
      })
    checks

let load_checks provider = function
  | None -> Ok (ground_truth_entries provider)
  | Some file -> (
      match Zodiac.Checkset.load file with
      | Ok checks -> Ok (checkset_entries checks)
      | Error e -> Error e)

(* Evaluate every check over a built graph. [checkpoint] runs between
   check entries — the cooperative deadline probe; it may raise to
   abandon the scan (partial findings are discarded by the caller). *)
let findings_of_graph ?checkpoint ~provider ~checks ~file ~line_of graph =
  let probe = match checkpoint with None -> ignore | Some f -> f in
  let defaults = Zodiac_cloud.Arm.defaults provider in
  List.concat_map
    (fun entry ->
      probe ();
      List.map
        (fun assignment ->
          let diagnosis =
            Diagnose.violation ~defaults graph entry.check assignment
          in
          {
            Sarif.rule_id = entry.id;
            message = entry.message;
            bindings = diagnosis.Diagnose.bindings;
            explanation = diagnosis.Diagnose.explanation;
            file;
            line = line_of assignment;
          })
        (Eval.violations ~defaults graph entry.check))
    checks

let scan_source ?checkpoint ~provider ~checks ~file src =
  match
    Zodiac_hcl.Compile.compile_string
      ~type_map:provider.Provider.of_terraform src
  with
  | Error e -> Error (Printf.sprintf "%s: %s" file e)
  | Ok (prog, _diags) ->
      let graph = Graph.build prog in
      let index = Sarif.index_source src in
      let line_of = function
        | [] -> 1
        | (_, rid) :: _ -> Sarif.resource_line index rid
      in
      Ok (findings_of_graph ?checkpoint ~provider ~checks ~file ~line_of graph)

(* Terraform-plan scanning: the same check evaluation over a program
   reconstructed from `terraform show -json` output. Plan JSON carries
   no HCL source positions, so every finding anchors at line 1. *)
let scan_plan_source ?checkpoint ~provider ~checks ~file src =
  match Zodiac_util.Json.of_string_result src with
  | Error e -> Error (Printf.sprintf "%s: %s" file e)
  | Ok json -> (
      match
        Zodiac_hcl.Plan.of_json ~type_map:provider.Provider.of_terraform json
      with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok prog ->
          let graph = Graph.build prog in
          Ok
            (findings_of_graph ?checkpoint ~provider ~checks ~file
               ~line_of:(fun _ -> 1)
               graph))

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> Error e
      | src -> Ok src)

let scan_file ?checkpoint ~provider ~checks path =
  match read_file path with
  | Error e -> Error e
  | Ok src -> scan_source ?checkpoint ~provider ~checks ~file:path src

let is_hcl path =
  Filename.check_suffix path ".tf" || Filename.check_suffix path ".hcl"

let hcl_files dir =
  let rec walk acc path =
    match Sys.is_directory path with
    | exception Sys_error _ -> acc
    | true ->
        let entries =
          match Sys.readdir path with
          | exception Sys_error _ -> [||]
          | entries ->
              Array.sort compare entries;
              entries
        in
        Array.fold_left
          (fun acc entry -> walk acc (Filename.concat path entry))
          acc entries
    | false -> if is_hcl path then path :: acc else acc
  in
  List.rev (walk [] dir)

let scan_directory ?jobs ?checkpoint ?scan ~provider ~checks dir =
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else if not (Sys.is_directory dir) then Error (dir ^ ": not a directory")
  else
    let scan_one =
      match scan with
      | Some f -> f
      | None -> fun file -> scan_file ?checkpoint ~provider ~checks file
    in
    let files = hcl_files dir in
    let scanned =
      Zodiac_util.Parallel.map ?jobs (fun file -> (file, scan_one file)) files
    in
    let findings, errors =
      List.fold_left
        (fun (findings, errors) (file, result) ->
          match result with
          | Ok fs -> (findings @ fs, errors)
          | Error e -> (findings, errors @ [ (file, e) ]))
        ([], []) scanned
    in
    Ok (findings, errors)
