module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Diagnose = Zodiac_spec.Diagnose
module Graph = Zodiac_iac.Graph

type check_entry = { id : string; message : string; check : Check.t }

let ground_truth_entries () =
  List.map
    (fun (rule : Zodiac_cloud.Rules.t) ->
      {
        id = rule.Zodiac_cloud.Rules.rule_id;
        message = rule.Zodiac_cloud.Rules.message;
        check = rule.Zodiac_cloud.Rules.check;
      })
    (Zodiac_cloud.Rules.ground_truth ())

let checkset_entries checks =
  List.map
    (fun (c : Check.t) ->
      {
        id = c.Check.cid;
        message = Zodiac_spec.Spec_printer.to_string c;
        check = c;
      })
    checks

let load_checks = function
  | None -> Ok (ground_truth_entries ())
  | Some file -> (
      match Zodiac.Checkset.load file with
      | Ok checks -> Ok (checkset_entries checks)
      | Error e -> Error e)

let scan_source ~checks ~file src =
  match
    Zodiac_hcl.Compile.compile_string
      ~type_map:Zodiac_azure.Catalog.of_terraform src
  with
  | Error e -> Error (Printf.sprintf "%s: %s" file e)
  | Ok (prog, _diags) ->
      let graph = Graph.build prog in
      let defaults = Zodiac_cloud.Arm.defaults in
      let index = Sarif.index_source src in
      let findings =
        List.concat_map
          (fun entry ->
            List.map
              (fun assignment ->
                let diagnosis =
                  Diagnose.violation ~defaults graph entry.check assignment
                in
                let line =
                  match assignment with
                  | [] -> 1
                  | (_, rid) :: _ -> Sarif.resource_line index rid
                in
                {
                  Sarif.rule_id = entry.id;
                  message = entry.message;
                  bindings = diagnosis.Diagnose.bindings;
                  explanation = diagnosis.Diagnose.explanation;
                  file;
                  line;
                })
              (Eval.violations ~defaults graph entry.check))
          checks
      in
      Ok findings

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> Error e
      | src -> Ok src)

let scan_file ~checks path =
  match read_file path with
  | Error e -> Error e
  | Ok src -> scan_source ~checks ~file:path src

let is_hcl path =
  Filename.check_suffix path ".tf" || Filename.check_suffix path ".hcl"

let hcl_files dir =
  let rec walk acc path =
    match Sys.is_directory path with
    | exception Sys_error _ -> acc
    | true ->
        let entries =
          match Sys.readdir path with
          | exception Sys_error _ -> [||]
          | entries ->
              Array.sort compare entries;
              entries
        in
        Array.fold_left
          (fun acc entry -> walk acc (Filename.concat path entry))
          acc entries
    | false -> if is_hcl path then path :: acc else acc
  in
  List.rev (walk [] dir)

let scan_directory ?jobs ~checks dir =
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else if not (Sys.is_directory dir) then Error (dir ^ ": not a directory")
  else
    let files = hcl_files dir in
    let scanned =
      Zodiac_util.Parallel.map ?jobs
        (fun file -> (file, scan_file ~checks file))
        files
    in
    let findings, errors =
      List.fold_left
        (fun (findings, errors) (file, result) ->
          match result with
          | Ok fs -> (findings @ fs, errors)
          | Error e -> (findings, errors @ [ (file, e) ]))
        ([], []) scanned
    in
    Ok (findings, errors)
