(** SARIF 2.1.0 rendering of scan findings.

    SARIF (Static Analysis Results Interchange Format) is the lingua
    franca of the IaC-scanner plugin ecosystem — Checkov, tfsec and the
    MCP tool surfaces all speak it — so emitting it is what lets Zodiac
    slot in as one more scanner. The emitted document is {b
    deterministic}: results are sorted by (file, line, rule id,
    bindings), rules by id, and no wall-clock value appears unless the
    caller explicitly passes [~timestamp]. That byte-stability is load
    bearing: the smoke gate asserts the resident daemon and the
    one-shot CLI produce identical SARIF for the same input. *)

type finding = {
  rule_id : string;
  message : string;  (** the rule's short message *)
  bindings : (string * string) list;  (** var -> "TYPE.name" *)
  explanation : string;  (** {!Zodiac_spec.Diagnose} value-level reason *)
  file : string;  (** artifact URI as given by the caller *)
  line : int;  (** 1-based start line; 1 when unknown *)
}

type line_index
(** Maps resources of one HCL source to the line of their defining
    [resource] block. *)

val index_source : string -> line_index
(** Scan an HCL document's token stream for top-level
    [resource "type" "name"] headers. Unlexable sources yield an empty
    index (every lookup falls back to line 1). Type labels are recorded
    both raw ([azurerm_subnet] / [aws_subnet]) and canonicalized
    through the matching provider's type mapping ([SUBNET]). *)

val resource_line : line_index -> Zodiac_iac.Resource.id -> int
(** Line of the resource's block header, or 1 when absent. *)

val document : ?timestamp:string -> finding list -> Zodiac_util.Json.t
(** One SARIF run: [tool.driver.rules] lists the distinct triggered
    rules (sorted by id), [results] the findings (sorted, with
    [ruleIndex] back-references and physical locations). [~timestamp]
    (an ISO-8601 string the caller formats) adds an [invocations]
    entry with [endTimeUtc]; omitted by default so output is
    byte-stable. *)

val to_string : ?timestamp:string -> finding list -> string
(** Pretty-printed {!document} with a trailing newline — exactly the
    bytes [zodiac scan --format sarif] writes to stdout. *)
