(** The daemon's transport loop: read request lines, answer response
    lines, never crash.

    Two transports share one loop: stdin/stdout (the default — the
    shape MCP-style plugin hosts expect) and a Unix-domain socket
    ([--socket PATH]) accepting one connection after another. A
    [shutdown] request stops the loop after its response is written;
    on the socket transport it also ends the accept loop.

    Guard rails, per request: lines longer than [max_request_bytes]
    are answered with [request_too_large] (and skipped, not buffered);
    malformed JSON with [parse_error]; a request whose handling
    exceeds [deadline_ms] has its result replaced by a
    [deadline_exceeded] error (pure OCaml has no preemption, so the
    deadline is checked when the handler returns — it bounds what the
    client waits for in good faith, not a runaway computation). *)

type config = {
  max_request_bytes : int;  (** default 1 MiB *)
  deadline_ms : int option;  (** default [None]: no deadline *)
}

val default_config : config

val handle_line :
  ?config:config -> Session.t -> string -> Zodiac_util.Json.t
(** Parse-guard-dispatch for one request line; the response value the
    transports serialize. Exposed for the in-process round-trip tests
    and the E17 latency bench. *)

val serve_channels :
  ?config:config -> Session.t -> in_channel -> out_channel -> unit
(** Serve until EOF or a [shutdown] request. Responses are flushed
    after every line. *)

val serve_stdio : ?config:config -> Session.t -> unit
(** {!serve_channels} over stdin/stdout. *)

val serve_socket : ?config:config -> Session.t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), then accept and serve connections sequentially until a
    [shutdown] request arrives. The socket file is removed on exit.
    @raise Unix.Unix_error when binding fails. *)
