(** The daemon's transport loop: read request lines, answer response
    lines, never crash.

    Two transports share one per-connection loop: stdin/stdout (the
    default — the shape MCP-style plugin hosts expect) and a
    Unix-domain socket ([--socket PATH]) serving up to [max_clients]
    connections concurrently, each on its own domain against the one
    shared {!Session}. A [shutdown] request stops the server after its
    response is written; queued connections get a [shutting_down]
    error and in-flight connections are unblocked and joined.

    Backpressure is explicit: the accept loop admits at most
    [max_clients] pending connections on top of the [max_clients]
    being served; past that bound a connection is answered with a
    structured [busy] error and closed immediately — never parked in
    an invisible accept queue.

    Guard rails, per request: lines longer than [max_request_bytes]
    are answered with [request_too_large] (and drained, not buffered);
    malformed JSON with [parse_error]; [deadline_ms] is enforced by
    {!Session.handle} while the request runs — scan/validate handlers
    probe the deadline at their work boundaries and abandon the
    request with a [deadline_exceeded] error. *)

type config = {
  max_request_bytes : int;  (** default 1 MiB *)
  deadline_ms : int option;  (** default [None]: no deadline *)
  max_clients : int;
      (** concurrent connections served (and, equally, admission-queue
          bound); default 4, clamped to at least 1 *)
}

val default_config : config

val handle_line :
  ?config:config -> Session.t -> string -> Zodiac_util.Json.t
(** Parse-guard-dispatch for one request line; the response value the
    transports serialize. Exposed for the in-process round-trip tests
    and the E17/E19 latency benches. *)

val serve_channels :
  ?config:config -> Session.t -> in_channel -> out_channel -> unit
(** Serve one connection until EOF or a [shutdown] request. Responses
    are flushed after every line. *)

val serve_stdio : ?config:config -> Session.t -> unit
(** {!serve_channels} over stdin/stdout, counted as one connection. *)

val serve_socket : ?config:config -> Session.t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), then accept and serve connections concurrently on
    [max_clients] worker domains until a [shutdown] request arrives.
    The socket file is removed on exit.
    @raise Unix.Unix_error when binding fails. *)
