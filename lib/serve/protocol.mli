(** The [zodiac serve] line-delimited JSON protocol.

    One request per line, one response line per request, in order.
    Requests are [{"id": <any>, "method": <string>, "params": {...}}];
    the method surface mirrors the Checkov MCP tool
    ([scan_file]/[scan_directory]/[list_checks]) plus Zodiac's
    deployability oracle ([validate]) and the control verbs
    [ping]/[stats]/[shutdown]. Responses echo the request id:
    [{"id": ..., "ok": true, "result": ...}] on success,
    [{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}]
    on failure. Malformed input of any shape yields a structured error
    response — parsing never raises past this module. *)

type verb =
  | Scan_file of { path : string; source : string option }
      (** [source], when present, is scanned in place of the file's
          contents — the path then only labels the SARIF artifact. *)
  | Scan_directory of { dir : string }
  | Scan_batch of { files : (string * string option) list }
      (** Wire method [scan_batch]: params
          [{"files": [{"path": ..., "source"?: ...}, ...]}] — N files,
          one SARIF run per file in request order, answered as a single
          response. The list must be non-empty. *)
  | Scan_plan of { path : string; source : string option }
      (** Wire method [scan_terraform_plan]: the input is Terraform
          plan JSON ([terraform show -json] output), scanned through
          {!Zodiac_hcl.Plan}. *)
  | List_checks
  | Validate of { path : string; source : string option }
  | Ping
  | Stats
  | Shutdown

type request = { id : Zodiac_util.Json.t; verb : verb }
(** [id] is echoed verbatim ([Null] when the client sent none). *)

type error = { code : string; message : string }
(** Codes: [parse_error], [request_too_large], [invalid_request],
    [unknown_method], [missing_param], [scan_error], [validate_error],
    [deadline_exceeded], [busy], [shutting_down], [internal_error]. *)

val parse : max_bytes:int -> string -> (request, Zodiac_util.Json.t * error) result
(** Parse one request line. On failure the returned [Json.t] is the
    best-effort request id to echo (often [Null]). *)

val ok_response :
  ?extra:(string * Zodiac_util.Json.t) list ->
  id:Zodiac_util.Json.t ->
  Zodiac_util.Json.t ->
  Zodiac_util.Json.t
(** [{"id": ..., "ok": true, "result": ...}]. [extra] members (e.g.
    [content_fingerprint] from {!Session.handle_extra}) are appended
    after ["result"], leaving the result member's bytes untouched. *)

val error_response : id:Zodiac_util.Json.t -> error -> Zodiac_util.Json.t

val verb_name : verb -> string
(** The wire method name ("scan_file", ...), used for telemetry span
    names and the stats table. *)
