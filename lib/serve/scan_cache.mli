(** Content-fingerprint scan cache for the resident daemon.

    Re-scanning an unchanged file must be a table lookup, not a
    recompile: each scan result is keyed by
    [fingerprint (mode, registry fingerprint, source bytes)], where the
    registry fingerprint folds in every check's id, message and printed
    spec — so a changed file, a different input mode (HCL vs. plan
    JSON), or a different check set all miss, and a hit returns
    findings that serialize to byte-identical SARIF.

    Findings are cached path-stripped ([file = ""]) and the caller's
    path is reattached on lookup, so the same content scanned under two
    paths shares one entry without leaking the first requester's path.

    The cache is a bounded in-memory LRU ({!Zodiac_engine.Memo})
    optionally backed by the persistent {!Zodiac_util.Cache} store
    (stage ["scan"]), and is safe to share across server domains: all
    operations take an internal mutex. *)

type t

val create :
  ?capacity:int ->
  ?disk:Zodiac_util.Cache.t ->
  checks:Scan.check_entry list ->
  unit ->
  t
(** [capacity] bounds the in-memory LRU (default 4096 entries). [disk]
    adds write-through persistence so a restarted daemon starts warm. *)

val find :
  t ->
  ?tag:string ->
  mode:string ->
  file:string ->
  string ->
  Sarif.finding list option
(** Lookup by source bytes; [mode] tags the input language (["hcl"] or
    ["plan"]), [tag] the resolved provider (its fingerprint — content
    scanned under two providers never shares an entry), [file] is
    reattached to the cached findings. Counts a hit or a miss. *)

val add : t -> ?tag:string -> mode:string -> string -> Sarif.finding list -> unit
(** Remember a successful scan of the given source bytes. *)

val scan :
  t ->
  ?tag:string ->
  mode:string ->
  file:string ->
  string ->
  (unit -> (Sarif.finding list, string) result) ->
  (Sarif.finding list, string) result
(** [scan t ?tag ~mode ~file src scanner]: cached lookup, else run
    [scanner] and cache its findings. Errors are never cached — a
    failed scan re-runs next time. *)

val fingerprint : t -> ?tag:string -> mode:string -> string -> string
(** The cache key of the given source bytes under [mode] — the
    ETag-style validator scan responses expose as
    [content_fingerprint], so clients can recognize unchanged content
    without resending it. Stable for a fixed (content, mode, provider
    tag, check registry) tuple. *)

val hits : t -> int
val misses : t -> int

val entries : t -> int
(** Current in-memory entry count. *)
