module Json = Zodiac_util.Json
module Cidr = Zodiac_util.Cidr
module Codec = Zodiac_util.Codec

type reference = { rtype : string; rname : string; attr : string }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Block of (string * t) list
  | Ref of reference

let reference rtype rname attr = Ref { rtype; rname; attr }

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Block xs, Block ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | Ref x, Ref y -> x = y
  | (Null | Bool _ | Int _ | Str _ | List _ | Block _ | Ref _), _ -> false

let compare = Stdlib.compare

let is_null = function Null -> true | _ -> false

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "%S" s
  | List items -> "[" ^ String.concat ", " (List.map to_string items) ^ "]"
  | Block fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (to_string v)) fields)
      ^ "}"
  | Ref r -> Printf.sprintf "%s.%s.%s" r.rtype r.rname r.attr

let pp fmt v = Format.pp_print_string fmt (to_string v)

let str = function Str s -> Some s | _ -> None

let str_exn v =
  match v with
  | Str s -> s
  | _ -> invalid_arg (Printf.sprintf "Value.str_exn: %s" (to_string v))

let int = function Int i -> Some i | _ -> None

let bool = function Bool b -> Some b | _ -> None

let refs v =
  let acc = ref [] in
  let rec walk = function
    | Null | Bool _ | Int _ | Str _ -> ()
    | Ref r -> acc := r :: !acc
    | List items -> List.iter walk items
    | Block fields -> List.iter (fun (_, v) -> walk v) fields
  in
  walk v;
  List.rev !acc

let rec map_refs f = function
  | (Null | Bool _ | Int _ | Str _) as v -> v
  | Ref r -> f r
  | List items -> List (List.map (map_refs f) items)
  | Block fields -> Block (List.map (fun (k, v) -> (k, map_refs f v)) fields)

let cidr = function Str s -> Cidr.of_string s | _ -> None

let rec write b = function
  | Null -> Codec.write_byte b 0
  | Bool x ->
      Codec.write_byte b 1;
      Codec.write_bool b x
  | Int i ->
      Codec.write_byte b 2;
      Codec.write_int b i
  | Str s ->
      Codec.write_byte b 3;
      Codec.write_string b s
  | List items ->
      Codec.write_byte b 4;
      Codec.write_list write b items
  | Block fields ->
      Codec.write_byte b 5;
      Codec.write_list
        (fun b (k, v) ->
          Codec.write_string b k;
          write b v)
        b fields
  | Ref r ->
      Codec.write_byte b 6;
      Codec.write_string b r.rtype;
      Codec.write_string b r.rname;
      Codec.write_string b r.attr

let rec read s =
  match Codec.read_byte s with
  | 0 -> Null
  | 1 -> Bool (Codec.read_bool s)
  | 2 -> Int (Codec.read_int s)
  | 3 -> Str (Codec.read_string s)
  | 4 -> List (Codec.read_list read s)
  | 5 ->
      Block
        (Codec.read_list
           (fun s ->
             let k = Codec.read_string s in
             let v = read s in
             (k, v))
           s)
  | 6 ->
      let rtype = Codec.read_string s in
      let rname = Codec.read_string s in
      let attr = Codec.read_string s in
      Ref { rtype; rname; attr }
  | n -> Codec.corrupt "bad value tag %d" n

let rec to_json = function
  | Null -> Json.Null
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Str s -> Json.String s
  | List items -> Json.List (List.map to_json items)
  | Block fields -> Json.Obj (List.map (fun (k, v) -> (k, to_json v)) fields)
  | Ref r -> Json.Obj [ ("__ref__", Json.String (Printf.sprintf "%s.%s.%s" r.rtype r.rname r.attr)) ]

let rec of_json = function
  | Json.Null -> Null
  | Json.Bool b -> Bool b
  | Json.Int i -> Int i
  | Json.Float f -> Int (int_of_float f)
  | Json.String s -> Str s
  | Json.List items -> List (List.map of_json items)
  | Json.Obj [ ("__ref__", Json.String spec) ] -> (
      match String.split_on_char '.' spec with
      | [ rtype; rname; attr ] -> Ref { rtype; rname; attr }
      | rtype :: rname :: rest when rest <> [] ->
          Ref { rtype; rname; attr = String.concat "." rest }
      | _ -> Str spec)
  | Json.Obj fields -> Block (List.map (fun (k, v) -> (k, of_json v)) fields)
