module Json = Zodiac_util.Json

type id = { rtype : string; rname : string }

type t = { rtype : string; rname : string; attrs : (string * Value.t) list }

let make rtype rname attrs = { rtype; rname; attrs }

let id r = { rtype = r.rtype; rname = r.rname }

let id_to_string (i : id) = Printf.sprintf "%s.%s" i.rtype i.rname

let equal_id (a : id) (b : id) =
  String.equal a.rtype b.rtype && String.equal a.rname b.rname

let compare_id (a : id) (b : id) =
  match String.compare a.rtype b.rtype with
  | 0 -> String.compare a.rname b.rname
  | c -> c

let attr r name = List.assoc_opt name r.attrs

let split_path path = String.split_on_char '.' path

(* Walk a dotted path; [fanout] controls whether lists expand to all
   elements or only their head. *)
let rec walk ~fanout segments value =
  match segments with
  | [] -> [ value ]
  | seg :: rest -> (
      match value with
      | Value.Block fields -> (
          match List.assoc_opt seg fields with
          | Some v -> walk ~fanout rest v
          | None -> [])
      | Value.List items ->
          let items = if fanout then items else match items with [] -> [] | x :: _ -> [ x ] in
          List.concat_map (walk ~fanout (seg :: rest)) items
      | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Ref _ -> [])

let lookup ~fanout r path =
  match split_path path with
  | [] -> []
  | seg :: rest -> (
      match attr r seg with
      | None -> []
      | Some v -> walk ~fanout rest v)

let get r path =
  match lookup ~fanout:false r path with [] -> Value.Null | v :: _ -> v

let get_all r path = lookup ~fanout:true r path

let rec update_value segments v value =
  match segments with
  | [] -> v
  | seg :: rest -> (
      match value with
      | Value.Block fields ->
          let found = ref false in
          let fields =
            List.map
              (fun (k, old) ->
                if String.equal k seg then begin
                  found := true;
                  (k, update_value rest v old)
                end
                else (k, old))
              fields
          in
          let fields =
            if !found then fields else fields @ [ (seg, update_value rest v Value.Null) ]
          in
          Value.Block fields
      | Value.List (x :: xs) -> Value.List (update_value (seg :: rest) v x :: xs)
      | Value.List [] | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _
      | Value.Ref _ ->
          update_value rest v (Value.Block []))

let set r path v =
  match split_path path with
  | [] -> r
  | [ seg ] when Value.is_null v ->
      { r with attrs = List.filter (fun (k, _) -> not (String.equal k seg)) r.attrs }
  | seg :: rest ->
      let found = ref false in
      let attrs =
        List.map
          (fun (k, old) ->
            if String.equal k seg then begin
              found := true;
              (k, update_value rest v old)
            end
            else (k, old))
          r.attrs
      in
      let attrs =
        if !found then attrs else attrs @ [ (seg, update_value rest v Value.Null) ]
      in
      { r with attrs }

let remove_attr r name =
  { r with attrs = List.filter (fun (k, _) -> not (String.equal k name)) r.attrs }

let references r =
  let acc = ref [] in
  let rec walk path value =
    match value with
    | Value.Ref reference -> acc := (path, reference) :: !acc
    | Value.List items -> List.iter (walk path) items
    | Value.Block fields -> List.iter (fun (k, v) -> walk (path ^ "." ^ k) v) fields
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ -> ()
  in
  List.iter (fun (k, v) -> walk k v) r.attrs;
  List.rev !acc

let rename_refs ~(old_id : id) ~(new_id : id) r =
  let rewrite (reference : Value.reference) =
    if
      String.equal reference.rtype old_id.rtype
      && String.equal reference.rname old_id.rname
    then Value.Ref { reference with rtype = new_id.rtype; rname = new_id.rname }
    else Value.Ref reference
  in
  { r with attrs = List.map (fun (k, v) -> (k, Value.map_refs rewrite v)) r.attrs }

let attr_paths r =
  let acc = ref [] in
  let add path = if not (List.mem path !acc) then acc := path :: !acc in
  let rec walk path value =
    match value with
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Ref _ -> add path
    | Value.List items ->
        if items = [] then add path else List.iter (walk path) items
    | Value.Block fields ->
        if fields = [] then add path
        else List.iter (fun (k, v) -> walk (path ^ "." ^ k) v) fields
  in
  List.iter (fun (k, v) -> walk k v) r.attrs;
  List.rev !acc

let write b r =
  let module Codec = Zodiac_util.Codec in
  Codec.write_string b r.rtype;
  Codec.write_string b r.rname;
  Codec.write_list
    (fun b (k, v) ->
      Codec.write_string b k;
      Value.write b v)
    b r.attrs

let read s =
  let module Codec = Zodiac_util.Codec in
  let rtype = Codec.read_string s in
  let rname = Codec.read_string s in
  let attrs =
    Codec.read_list
      (fun s ->
        let k = Codec.read_string s in
        let v = Value.read s in
        (k, v))
      s
  in
  make rtype rname attrs

let to_json r =
  Json.Obj
    [
      ("type", Json.String r.rtype);
      ("name", Json.String r.rname);
      ("attributes", Json.Obj (List.map (fun (k, v) -> (k, Value.to_json v)) r.attrs));
    ]

let of_json json =
  match
    ( Json.string_value (Json.member "type" json),
      Json.string_value (Json.member "name" json),
      Json.member "attributes" json )
  with
  | Some rtype, Some rname, Json.Obj fields ->
      Some (make rtype rname (List.map (fun (k, v) -> (k, Value.of_json v)) fields))
  | Some rtype, Some rname, Json.Null -> Some (make rtype rname [])
  | _ -> None

let pp fmt r =
  Format.fprintf fmt "resource %s %s {" r.rtype r.rname;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s = %a;" k Value.pp v) r.attrs;
  Format.fprintf fmt " }"
