(** A single IaC resource block.

    Resources are identified by (type, local name) — mirroring Terraform's
    [resource "azurerm_subnet" "a" { ... }]. Attribute access supports
    dotted paths through nested blocks; traversing a list fans out over
    its elements (so ["rule.dir"] yields the direction of every security
    rule), matching the paper's [SG.rule\[i\].dir] notation. *)

type id = { rtype : string; rname : string }
(** Stable identity of a resource within a program. *)

type t = {
  rtype : string;
  rname : string;
  attrs : (string * Value.t) list;
}

val make : string -> string -> (string * Value.t) list -> t
val id : t -> id
val id_to_string : id -> string
val equal_id : id -> id -> bool
val compare_id : id -> id -> int

val attr : t -> string -> Value.t option
(** Top-level attribute lookup (no path traversal). *)

val get : t -> string -> Value.t
(** Dotted-path lookup returning the first match, or [Null] when the path
    is absent. A list on the path is entered at its first element. *)

val get_all : t -> string -> Value.t list
(** Dotted-path lookup that fans out across list elements; returns every
    value reached. Empty when the path is absent. *)

val set : t -> string -> Value.t -> t
(** [set r path v] returns a copy with the dotted [path] replaced (or the
    top-level attribute added when the path has one segment and is
    absent). List fan-out is not performed: a list on the path updates
    its first element. Setting [Null] on a one-segment path removes the
    attribute. *)

val remove_attr : t -> string -> t
(** Remove a top-level attribute if present. *)

val references : t -> (string * Value.reference) list
(** Every reference in the resource with the dotted attribute path where
    it occurs. List positions are not encoded in the path. *)

val rename_refs : old_id:id -> new_id:id -> t -> t
(** Rewrite all references to [old_id] so they point at [new_id]. *)

val attr_paths : t -> string list
(** All dotted paths to leaf values present in the resource (lists fan
    out; each path is reported once). *)

val write : Zodiac_util.Codec.sink -> t -> unit
(** Binary codec for the warm-start cache; exact inverse of {!read}. *)

val read : Zodiac_util.Codec.src -> t
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val to_json : t -> Zodiac_util.Json.t
val of_json : Zodiac_util.Json.t -> t option
val pp : Format.formatter -> t -> unit
