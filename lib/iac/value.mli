(** Attribute values of IaC resources.

    A Terraform attribute value is a scalar, a list, a nested block, or a
    reference to another resource's attribute (the glue that forms the
    resource graph). Values are immutable. *)

type reference = {
  rtype : string;  (** referenced resource type, e.g. ["SUBNET"] *)
  rname : string;  (** referenced resource local name, e.g. ["a"] *)
  attr : string;  (** referenced attribute, e.g. ["id"] *)
}
(** A symbolic reference [SUBNET.a.id] appearing inside an attribute. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Block of (string * t) list  (** nested attribute block *)
  | Ref of reference

val reference : string -> string -> string -> t
(** [reference rtype rname attr] is [Ref {rtype; rname; attr}]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_null : t -> bool
(** True only for [Null]. *)

val to_string : t -> string
(** Human-readable rendering, e.g. for error messages. *)

val pp : Format.formatter -> t -> unit

val str : t -> string option
(** [Some s] when the value is [Str s]. *)

val str_exn : t -> string
(** @raise Invalid_argument when not a string. *)

val int : t -> int option
val bool : t -> bool option

val refs : t -> reference list
(** All references contained anywhere inside the value, in order. *)

val map_refs : (reference -> t) -> t -> t
(** [map_refs f v] replaces every reference [r] by [f r], recursively. *)

val cidr : t -> Zodiac_util.Cidr.t option
(** Parse a [Str] value as an IPv4 CIDR block. *)

val write : Zodiac_util.Codec.sink -> t -> unit
(** Binary codec for the warm-start cache; exact inverse of {!read}. *)

val read : Zodiac_util.Codec.src -> t
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val to_json : t -> Zodiac_util.Json.t
(** References encode as [{"__ref__": "TYPE.name.attr"}]. *)

val of_json : Zodiac_util.Json.t -> t
(** Inverse of {!to_json}. Unknown JSON shapes map to closest value. *)
