(** A compiled IaC program: an ordered collection of resources.

    Corresponds to a Terraform deployment plan. Resource (type, name)
    pairs are unique within a program. *)

type t

val empty : t
val of_resources : Resource.t list -> t
(** Later duplicates of the same (type, name) replace earlier ones. *)

val resources : t -> Resource.t list
val size : t -> int

val find : t -> Resource.id -> Resource.t option
val mem : t -> Resource.id -> bool

val add : t -> Resource.t -> t
(** Add or replace. *)

val remove : t -> Resource.id -> t
val update : t -> Resource.id -> (Resource.t -> Resource.t) -> t

val filter : (Resource.t -> bool) -> t -> t
val by_type : t -> string -> Resource.t list

val types : t -> string list
(** Distinct resource types, in first-appearance order. *)

val fresh_name : t -> string -> string
(** [fresh_name t rtype] is a local name not used by any [rtype]
    resource, of the form ["v0"], ["v1"], ... *)

val dangling_refs : t -> (Resource.id * Value.reference) list
(** References whose target resource does not exist in the program. *)

val write : Zodiac_util.Codec.sink -> t -> unit
(** Binary codec for the warm-start cache; exact inverse of {!read}. *)

val read : Zodiac_util.Codec.src -> t
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val to_json : t -> Zodiac_util.Json.t
(** The JSON deployment-plan encoding (shared with {!Zodiac_hcl}). *)

val of_json : Zodiac_util.Json.t -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
