module Json = Zodiac_util.Json

type t = { items : Resource.t list }

let empty = { items = [] }

let mem t id = List.exists (fun r -> Resource.equal_id (Resource.id r) id) t.items

let add t r =
  let id = Resource.id r in
  if mem t id then
    { items = List.map (fun r' -> if Resource.equal_id (Resource.id r') id then r else r') t.items }
  else { items = t.items @ [ r ] }

let of_resources rs = List.fold_left add empty rs

let resources t = t.items

let size t = List.length t.items

let find t id = List.find_opt (fun r -> Resource.equal_id (Resource.id r) id) t.items

let remove t id =
  { items = List.filter (fun r -> not (Resource.equal_id (Resource.id r) id)) t.items }

let update t id f =
  { items = List.map (fun r -> if Resource.equal_id (Resource.id r) id then f r else r) t.items }

let filter pred t = { items = List.filter pred t.items }

let by_type t rtype = List.filter (fun r -> String.equal r.Resource.rtype rtype) t.items

let types t =
  List.fold_left
    (fun acc r ->
      if List.mem r.Resource.rtype acc then acc else acc @ [ r.Resource.rtype ])
    [] t.items

let fresh_name t rtype =
  let rec try_index i =
    let candidate = Printf.sprintf "v%d" i in
    if mem t { Resource.rtype; rname = candidate } then try_index (i + 1) else candidate
  in
  try_index 0

let dangling_refs t =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun (_, (reference : Value.reference)) ->
          let target = { Resource.rtype = reference.rtype; rname = reference.rname } in
          if mem t target then None else Some (Resource.id r, reference))
        (Resource.references r))
    t.items

let write b t = Zodiac_util.Codec.write_list Resource.write b t.items

(* Items were a valid program when written, so rebuild the record
   directly instead of re-running [of_resources]'s quadratic dedup. *)
let read s = { items = Zodiac_util.Codec.read_list Resource.read s }

let to_json t =
  Json.Obj
    [
      ("format_version", Json.String "zodiac-plan-1");
      ("resources", Json.List (List.map Resource.to_json t.items));
    ]

let of_json json =
  match Json.member "resources" json with
  | Json.List items ->
      let parsed = List.map Resource.of_json items in
      if List.for_all Option.is_some parsed then
        Some (of_resources (List.filter_map Fun.id parsed))
      else None
  | _ -> None

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," Resource.pp r) t.items;
  Format.fprintf fmt "@]"

let equal a b =
  List.length a.items = List.length b.items
  && List.for_all2
       (fun r1 r2 ->
         Resource.equal_id (Resource.id r1) (Resource.id r2)
         && List.length r1.Resource.attrs = List.length r2.Resource.attrs
         && List.for_all2
              (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Value.equal v1 v2)
              r1.Resource.attrs r2.Resource.attrs)
       a.items b.items
