(** Hypothesized semantic checks produced by the mining engine, with
    the association statistics used for filtering (§3.3). *)

type t = {
  check : Zodiac_spec.Check.t;
  template_id : string;  (** the template family that produced it *)
  support : int;  (** occurrences of the condition in the corpus *)
  confidence : float;  (** P(statement | condition) *)
  lift : float;  (** confidence / P(statement) *)
  needs_interpolation : bool;
      (** quantitative checks whose constant was only witnessed, not
          confirmed — to be completed by the LLM oracle *)
}

val make :
  ?needs_interpolation:bool ->
  template_id:string ->
  support:int ->
  confidence:float ->
  lift:float ->
  Zodiac_spec.Check.t ->
  t

val dedup : t list -> t list
(** Keep one candidate per structurally-distinct check (the one with
    the highest support; full ties broken by a fixed preference order),
    sorted by (support desc, cid). The result is independent of the
    input order, so mining shards cannot perturb it. *)

val write : Zodiac_util.Codec.sink -> t -> unit
(** Binary codec for the warm-start cache. Confidence and lift are
    stored as IEEE-754 bits, so a decoded candidate is field-identical
    to the encoded one. *)

val read : Zodiac_util.Codec.src -> t
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val list_artifact : t list Zodiac_util.Stage.artifact
(** The mined stage's cache binding: a length-prefixed candidate list
    ({!write}/{!read}) for {!Zodiac_util.Stage.run}. *)

val describe : t -> string
