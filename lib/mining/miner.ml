module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema
module Check = Zodiac_spec.Check
module Kb = Zodiac_kb.Kb
module Defaults = Zodiac_cloud.Defaults
module Provider = Zodiac_provider.Provider
module Cidr = Zodiac_util.Cidr
module Parallel = Zodiac_util.Parallel
module Codec = Zodiac_util.Codec
module Cache = Zodiac_util.Cache
module Telemetry = Zodiac_util.Telemetry

type config = { use_kb : bool; min_support : int }

let default_config = { use_kb = true; min_support = 4 }

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let incr_tbl tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get_count tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

(* ---- shard-table merges -------------------------------------------
   Counting runs as shard-then-merge when [jobs > 1]: each chunk of the
   corpus fills private tables, merged in chunk order. Every merge below
   is an exact monoid on integers (addition, or (min, max, sum)), so the
   merged counts are independent of the chunking. *)

let add_count tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let merge_counts dst src = Hashtbl.iter (add_count dst) src

(* (denominator, numerator) statistics *)
let merge_stats dst src =
  Hashtbl.iter
    (fun k (d, s) ->
      let d0, s0 = Option.value ~default:(0, 0) (Hashtbl.find_opt dst k) in
      Hashtbl.replace dst k (d0 + d, s0 + s))
    src

let count_sharded ?jobs count merge programs =
  match Parallel.chunks ?jobs programs with
  | [] -> count []
  | [ chunk ] -> count chunk
  | chunks -> (
      match Parallel.map ?jobs count chunks with
      | first :: rest -> List.fold_left merge first rest
      | [] -> assert false)

let lift_of conf prior =
  let prior = Float.max prior 1e-6 in
  Float.min (conf /. prior) 1000.0

(* Statement prior for equality between two attribute populations:
   sum over values of P1(v) * P2(v), from the KB's observation tables. *)
let eq_baseline kb (ta, xa) (tb, yb) =
  match
    (Kb.attr_info kb ~rtype:ta ~attr:xa, Kb.attr_info kb ~rtype:tb ~attr:yb)
  with
  | Some i1, Some i2 ->
      let total1 = i1.Kb.observed_total in
      let total2 = i2.Kb.observed_total in
      if total1 = 0 || total2 = 0 then 0.0
      else
        (* iterate the canonically-sorted list (stable float summation
           order) but probe the other side's hash index: O(n) not O(n^2) *)
        List.fold_left
          (fun acc (v, c1) ->
            match Hashtbl.find_opt i2.Kb.observed_index v with
            | Some c2 ->
                acc
                +. (float_of_int c1 /. float_of_int total1)
                   *. (float_of_int c2 /. float_of_int total2)
            | None -> acc)
          0.0 i1.Kb.observed
  | _ -> 0.0

(* P(attr = v) over the whole type population: resources lacking the
   attribute count as "not equal". *)
let value_prior kb rtype attr v =
  match Kb.attr_info kb ~rtype ~attr with
  | None -> 0.0
  | Some info ->
      let population = max (Kb.population kb rtype) 1 in
      Float.min 1.0
        (float_of_int
           (Option.value ~default:0 (Hashtbl.find_opt info.Kb.observed_index v))
        /. float_of_int population)

let presence_prior kb rtype attr =
  match Kb.attr_info kb ~rtype ~attr with
  | None -> 0.0
  | Some info ->
      let population = max (Kb.population kb rtype) 1 in
      Float.min 1.0 (float_of_int info.Kb.occurrences /. float_of_int population)

let is_scalar = function
  | Value.Str _ | Value.Bool _ -> true
  | Value.Int _ | Value.Null | Value.List _ | Value.Block _ | Value.Ref _ -> false

(* Attribute paths of a resource that do not traverse a repeated-block
   collection (those belong to the indexed family). *)
let flat_paths provider r =
  let schema = provider.Provider.find_schema r.Resource.rtype in
  List.filter
    (fun path ->
      match schema with
      | None -> true
      | Some s -> (
          (* exclude the path if any prefix is a list-of-blocks *)
          let segments = String.split_on_char '.' path in
          let rec check prefix = function
            | [] -> true
            | seg :: rest -> (
                let p = if prefix = "" then seg else prefix ^ "." ^ seg in
                match Schema.find_attr s p with
                | Some { Schema.atype = Schema.T_list (Schema.T_block _); _ } -> false
                | _ -> check p rest)
          in
          check "" segments))
    (Resource.attr_paths r)

(* Facts about one resource used by the intra families. *)
type fact = F_val of string * Value.t | F_present of string

let facts_of_resource provider cfg kb r =
  let rtype = r.Resource.rtype in
  List.concat_map
    (fun path ->
      let values = Resource.get_all r path in
      let enum_ok v =
        if cfg.use_kb then List.mem v (Kb.enum_values kb ~rtype ~attr:path)
        else is_scalar v
      in
      let val_facts =
        List.filter_map
          (fun v -> if is_scalar v && enum_ok v then Some (F_val (path, v)) else None)
          values
      in
      let presence_ok =
        if not cfg.use_kb then true
        else
          match Kb.attr_info kb ~rtype ~attr:path with
          | Some { Kb.requirement = Some Schema.Optional; _ } -> true
          | Some { Kb.requirement = None; _ } -> true
          | _ -> false
      in
      let present_facts = if values <> [] && presence_ok then [ F_present path ] else [] in
      let dedup xs =
        List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
      in
      dedup (val_facts @ present_facts))
    (flat_paths provider r)

(* Check constructors. *)
let attr_term var attr = Check.Attr { Check.var; attr }

let fact_cond var = function
  | F_val (attr, v) -> Check.Cmp (Check.Eq, attr_term var attr, Check.Const v)
  | F_present attr -> Check.Cmp (Check.Ne, attr_term var attr, Check.Const Value.Null)

let intra_check ty cond stmt =
  Check.make ~source:Check.Mined [ { Check.var = "r"; btype = ty } ] cond stmt

(* ------------------------------------------------------------------ *)
(* Intra-resource mining                                               *)
(* ------------------------------------------------------------------ *)

type intra_counts = {
  n_by_type : (string, int) Hashtbl.t;
  single : (string * fact, int) Hashtbl.t;
  pair : (string * fact * fact, int) Hashtbl.t;
  num_range : (string * fact * string, int * int * int) Hashtbl.t;
      (* (type, cond fact, numeric attr) -> (min, max, count) *)
}

let count_intra provider cfg kb programs =
  let n_by_type : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let single : (string * fact, int) Hashtbl.t = Hashtbl.create 1024 in
  let pair : (string * fact * fact, int) Hashtbl.t = Hashtbl.create 4096 in
  let num_range : (string * fact * string, int * int * int) Hashtbl.t =
    Hashtbl.create 256
  in
  let observe r =
    let ty = r.Resource.rtype in
    incr_tbl n_by_type ty;
    let facts = facts_of_resource provider cfg kb r in
    List.iter (fun f -> incr_tbl single (ty, f)) facts;
    List.iter
      (fun f1 ->
        List.iter
          (fun f2 ->
            let attr_of = function F_val (a, _) | F_present a -> a in
            if not (String.equal (attr_of f1) (attr_of f2)) then
              incr_tbl pair (ty, f1, f2))
          facts)
      facts;
    (* numeric observations conditioned on each fact (and on the
       numeric attribute's own presence) *)
    let numeric_attrs =
      List.filter_map
        (fun path ->
          match Resource.get_all r path with
          | [ Value.Int i ] -> Some (path, i)
          | _ -> None)
        (flat_paths provider r)
    in
    List.iter
      (fun (npath, i) ->
        let update cond_fact =
          let key = (ty, cond_fact, npath) in
          let lo, hi, c =
            Option.value ~default:(i, i, 0) (Hashtbl.find_opt num_range key)
          in
          Hashtbl.replace num_range key (min lo i, max hi i, c + 1)
        in
        update (F_present npath);
        List.iter
          (fun f ->
            match f with
            | F_val (a, _) when not (String.equal a npath) -> update f
            | F_val _ | F_present _ -> ())
          facts)
      numeric_attrs
  in
  List.iter (fun p -> List.iter observe (Program.resources p)) programs;
  { n_by_type; single; pair; num_range }

(* Codec for the intra counting tables. [min_support] only gates
   emission, never counting, so a cached table serves every support
   threshold; the key must cover corpus identity and [use_kb] (which
   changes which facts are counted). *)
let write_fact b = function
  | F_val (attr, v) ->
      Codec.write_byte b 0;
      Codec.write_string b attr;
      Value.write b v
  | F_present attr ->
      Codec.write_byte b 1;
      Codec.write_string b attr

let read_fact s =
  match Codec.read_byte s with
  | 0 ->
      let attr = Codec.read_string s in
      F_val (attr, Value.read s)
  | 1 -> F_present (Codec.read_string s)
  | n -> Codec.corrupt "bad fact tag %d" n

let write_intra b (c : intra_counts) =
  Codec.write_table Codec.write_string Codec.write_int b c.n_by_type;
  Codec.write_table
    (fun b (ty, f) ->
      Codec.write_string b ty;
      write_fact b f)
    Codec.write_int b c.single;
  Codec.write_table
    (fun b (ty, f1, f2) ->
      Codec.write_string b ty;
      write_fact b f1;
      write_fact b f2)
    Codec.write_int b c.pair;
  Codec.write_table
    (fun b (ty, f, attr) ->
      Codec.write_string b ty;
      write_fact b f;
      Codec.write_string b attr)
    (fun b (lo, hi, n) ->
      Codec.write_int b lo;
      Codec.write_int b hi;
      Codec.write_int b n)
    b c.num_range

let read_intra s =
  let n_by_type = Codec.read_table Codec.read_string Codec.read_int s in
  let single =
    Codec.read_table
      (fun s ->
        let ty = Codec.read_string s in
        let f = read_fact s in
        (ty, f))
      Codec.read_int s
  in
  let pair =
    Codec.read_table
      (fun s ->
        let ty = Codec.read_string s in
        let f1 = read_fact s in
        let f2 = read_fact s in
        (ty, f1, f2))
      Codec.read_int s
  in
  let num_range =
    Codec.read_table
      (fun s ->
        let ty = Codec.read_string s in
        let f = read_fact s in
        let attr = Codec.read_string s in
        (ty, f, attr))
      (fun s ->
        let lo = Codec.read_int s in
        let hi = Codec.read_int s in
        let n = Codec.read_int s in
        (lo, hi, n))
      s
  in
  { n_by_type; single; pair; num_range }

(* Run [compute] through the per-shard table cache when one is wired
   in. [tables] is (store, key of the materialized corpus); [extra]
   distinguishes table families sharing that corpus. *)
let cached_tables ?(telemetry = Telemetry.null) tables ~stage ~extra ~write
    ~read compute =
  match tables with
  | None -> compute ()
  | Some (store, corpus_key) -> (
      let key = Codec.fingerprint (corpus_key :: extra) in
      match Cache.find store ~stage ~key read with
      | Some t ->
          Telemetry.count telemetry "miner.table_hits" 1;
          t
      | None ->
          Telemetry.count telemetry "miner.table_misses" 1;
          let t = compute () in
          Cache.store store ~stage ~key (fun b -> write b t);
          t)

let merge_intra dst src =
  merge_counts dst.n_by_type src.n_by_type;
  merge_counts dst.single src.single;
  merge_counts dst.pair src.pair;
  Hashtbl.iter
    (fun k (lo, hi, c) ->
      let merged =
        match Hashtbl.find_opt dst.num_range k with
        | None -> (lo, hi, c)
        | Some (lo0, hi0, c0) -> (min lo lo0, max hi hi0, c0 + c)
      in
      Hashtbl.replace dst.num_range k merged)
    src.num_range;
  dst

(* Candidate emission from final merged tables. Emission is a pure
   function of (config, KB, counts): iteration order over the hash
   tables may vary with how the counts were sharded and merged, but the
   emitted multiset does not, and [Candidate.dedup]'s total preference
   order makes the downstream artifact independent of it — the same
   argument that already covers [jobs]-invariance covers shard-boundary
   invariance. *)
let emit_intra cfg kb { n_by_type; single; pair; num_range } =
  let out = ref [] in
  let emit c = out := c :: !out in
  let fact_stmt_prior ty = function
    | F_val (attr, v) -> value_prior kb ty attr v
    | F_present attr -> presence_prior kb ty attr
  in
  (* positive implications from witnessed pairs *)
  Hashtbl.iter
    (fun (ty, f1, f2) c ->
      let support = get_count single (ty, f1) in
      if support >= cfg.min_support then begin
        let conf = float_of_int c /. float_of_int support in
        let prior = fact_stmt_prior ty f2 in
        let template_id =
          match (f1, f2) with
          | F_val _, F_val _ -> "INTRA-EQ-EQ"
          | F_val _, F_present _ -> "INTRA-EQ-NOTNULL"
          | F_present _, F_val _ -> "INTRA-NOTNULL-EQ"
          | F_present _, F_present _ -> "INTRA-NOTNULL-NOTNULL"
        in
        emit
          (Candidate.make ~template_id ~support ~confidence:conf
             ~lift:(lift_of conf prior)
             (intra_check ty (fact_cond "r" f1) (fact_cond "r" f2)))
      end)
    pair;
  (* negative implications: X => Y != v / Y == null, emitted when the
     co-occurrence is (nearly) absent yet Y=v (resp. Y present) is
     globally common. *)
  let singles_by_type : (string, fact list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (ty, f) _ ->
      Hashtbl.replace singles_by_type ty
        (f :: Option.value ~default:[] (Hashtbl.find_opt singles_by_type ty)))
    single;
  Hashtbl.iter
    (fun (ty, f1) support ->
      if support >= cfg.min_support then
        let n = float_of_int (get_count n_by_type ty) in
        List.iter
          (fun f2 ->
            let attr_of = function F_val (a, _) | F_present a -> a in
            if not (String.equal (attr_of f1) (attr_of f2)) then begin
              let co = get_count pair (ty, f1, f2) in
              let conf = 1.0 -. (float_of_int co /. float_of_int support) in
              let global = float_of_int (get_count single (ty, f2)) /. Float.max n 1.0 in
              (* only interesting when Y is otherwise common *)
              if conf >= 0.95 && global >= 0.05 then
                match f2 with
                | F_val (attr, v) ->
                    let prior = 1.0 -. value_prior kb ty attr v in
                    emit
                      (Candidate.make ~template_id:"INTRA-EQ-NE" ~support
                         ~confidence:conf ~lift:(lift_of conf prior)
                         (intra_check ty (fact_cond "r" f1)
                            (Check.Cmp (Check.Ne, attr_term "r" attr, Check.Const v))))
                | F_present attr ->
                    let prior = 1.0 -. presence_prior kb ty attr in
                    emit
                      (Candidate.make ~template_id:"INTRA-EQ-NULL" ~support
                         ~confidence:conf ~lift:(lift_of conf prior)
                         (intra_check ty (fact_cond "r" f1)
                            (Check.Cmp (Check.Eq, attr_term "r" attr, Check.Const Value.Null))))
            end)
          (Option.value ~default:[] (Hashtbl.find_opt singles_by_type ty)))
    single;
  (* quantitative ranges -> interpolation candidates *)
  Hashtbl.iter
    (fun (ty, f, npath) (lo, hi, c) ->
      if c >= cfg.min_support then begin
        let template_le, template_ge =
          match f with
          | F_val _ -> ("ENUM-NUM-LE", "ENUM-NUM-GE")
          | F_present _ -> ("PRESENT-NUM-LE", "PRESENT-NUM-GE")
        in
        let mk template op bound =
          Candidate.make ~needs_interpolation:true ~template_id:template ~support:c
            ~confidence:1.0 ~lift:1.0
            (intra_check ty (fact_cond "r" f)
               (Check.Cmp (op, attr_term "r" npath, Check.Const (Value.Int bound))))
        in
        (* Only bounded ranges are plausible constraints. *)
        if hi < 1_000_000 then emit (mk template_le Check.Le hi);
        if lo > 0 then emit (mk template_ge Check.Ge lo)
      end)
    num_range;
  !out

let mine_intra_families ~provider ?telemetry ?jobs ?tables cfg kb programs =
  emit_intra cfg kb
    (cached_tables ?telemetry tables ~stage:"miner-intra"
       ~extra:[ "intra"; string_of_bool cfg.use_kb ]
       ~write:write_intra ~read:read_intra (fun () ->
         count_sharded ?jobs (count_intra provider cfg kb) merge_intra programs))

(* ------------------------------------------------------------------ *)
(* Indexed (repeated-block) mining                                     *)
(* ------------------------------------------------------------------ *)

type indexed_counts = {
  (* (type, coll, x, y) -> (cond pairs, cond&stmt pairs) for EQ-NE;
     (type, coll, y) -> (pairs, distinct pairs) for NE *)
  eqne : (string * string * string * string, int * int) Hashtbl.t;
  ne : (string * string * string, int * int) Hashtbl.t;
  elem_values : (string * string * string, (Value.t, int) Hashtbl.t) Hashtbl.t;
}

let count_indexed programs =
  (* collection path -> per-resource element lists *)
  let collections r =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Value.List items
          when List.length items >= 1
               && List.for_all (function Value.Block _ -> true | _ -> false) items ->
            Some (name, List.map (function Value.Block f -> f | _ -> []) items)
        | _ -> None)
      r.Resource.attrs
  in
  let eqne : (string * string * string * string, int * int) Hashtbl.t =
    Hashtbl.create 128
  in
  let ne : (string * string * string, int * int) Hashtbl.t = Hashtbl.create 128 in
  let elem_values : (string * string * string, (Value.t, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 128
  in
  let observe r =
    let ty = r.Resource.rtype in
    List.iter
      (fun (coll, elems) ->
        let keys elem = List.filter (fun (_, v) -> is_scalar v || (match v with Value.Int _ -> true | _ -> false)) elem in
        List.iter
          (fun elem ->
            List.iter
              (fun (sub, v) ->
                let tbl =
                  match Hashtbl.find_opt elem_values (ty, coll, sub) with
                  | Some t -> t
                  | None ->
                      let t = Hashtbl.create 8 in
                      Hashtbl.replace elem_values (ty, coll, sub) t;
                      t
                in
                incr_tbl tbl v)
              (keys elem))
          elems;
        List.iteri
          (fun i e1 ->
            List.iteri
              (fun j e2 ->
                if i <> j then begin
                  let a1 = keys e1 and a2 = keys e2 in
                  List.iter
                    (fun (sub, v1) ->
                      match List.assoc_opt sub a2 with
                      | None -> ()
                      | Some v2 ->
                          (* unconditional distinctness of sub *)
                          let p, d = Option.value ~default:(0, 0) (Hashtbl.find_opt ne (ty, coll, sub)) in
                          Hashtbl.replace ne (ty, coll, sub)
                            (p + 1, d + if Value.equal v1 v2 then 0 else 1);
                          (* conditioned on equality of sub, distinctness of others *)
                          if Value.equal v1 v2 then
                            List.iter
                              (fun (sub2, w1) ->
                                if not (String.equal sub2 sub) then
                                  match List.assoc_opt sub2 a2 with
                                  | None -> ()
                                  | Some w2 ->
                                      let p, d =
                                        Option.value ~default:(0, 0)
                                          (Hashtbl.find_opt eqne (ty, coll, sub, sub2))
                                      in
                                      Hashtbl.replace eqne (ty, coll, sub, sub2)
                                        ( p + 1,
                                          d + if Value.equal w1 w2 then 0 else 1 ))
                              a1)
                    a1
                end)
              elems)
          elems)
      (collections r)
  in
  List.iter (fun p -> List.iter observe (Program.resources p)) programs;
  { eqne; ne; elem_values }

let merge_indexed dst src =
  merge_stats dst.eqne src.eqne;
  merge_stats dst.ne src.ne;
  Hashtbl.iter
    (fun k tbl ->
      match Hashtbl.find_opt dst.elem_values k with
      | None -> Hashtbl.replace dst.elem_values k (Hashtbl.copy tbl)
      | Some into -> merge_counts into tbl)
    src.elem_values;
  dst

(* Codec for the indexed counting tables — a pure function of the
   materialized corpus, so the cache key is the corpus key alone. *)
let write_indexed b (c : indexed_counts) =
  Codec.write_table
    (fun b (ty, coll, x, y) ->
      Codec.write_string b ty;
      Codec.write_string b coll;
      Codec.write_string b x;
      Codec.write_string b y)
    (fun b (p, d) ->
      Codec.write_int b p;
      Codec.write_int b d)
    b c.eqne;
  Codec.write_table
    (fun b (ty, coll, y) ->
      Codec.write_string b ty;
      Codec.write_string b coll;
      Codec.write_string b y)
    (fun b (p, d) ->
      Codec.write_int b p;
      Codec.write_int b d)
    b c.ne;
  Codec.write_table
    (fun b (ty, coll, sub) ->
      Codec.write_string b ty;
      Codec.write_string b coll;
      Codec.write_string b sub)
    (Codec.write_table Value.write Codec.write_int)
    b c.elem_values

let read_indexed s =
  let int_pair s =
    let p = Codec.read_int s in
    let d = Codec.read_int s in
    (p, d)
  in
  let eqne =
    Codec.read_table
      (fun s ->
        let ty = Codec.read_string s in
        let coll = Codec.read_string s in
        let x = Codec.read_string s in
        let y = Codec.read_string s in
        (ty, coll, x, y))
      int_pair s
  in
  let triple s =
    let ty = Codec.read_string s in
    let coll = Codec.read_string s in
    let y = Codec.read_string s in
    (ty, coll, y)
  in
  let ne = Codec.read_table triple int_pair s in
  let elem_values =
    Codec.read_table triple (Codec.read_table Value.read Codec.read_int) s
  in
  { eqne; ne; elem_values }

let emit_indexed cfg { eqne; ne; elem_values } =
  let distinct_prior tbl =
    (* probability two random elements differ, from the value table;
       summed in sorted-value order so the float result is independent
       of the merged table's insertion order *)
    let counts =
      Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
      |> List.sort (fun (v1, _) (v2, _) -> Value.compare v1 v2)
    in
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
    if total = 0 then 0.5
    else
      1.0
      -. List.fold_left
           (fun acc (_, c) ->
             let p = float_of_int c /. float_of_int total in
             acc +. (p *. p))
           0.0 counts
  in
  let out = ref [] in
  Hashtbl.iter
    (fun (ty, coll, sub, sub2) (p, d) ->
      if p >= cfg.min_support then begin
        let conf = float_of_int d /. float_of_int p in
        let prior =
          match Hashtbl.find_opt elem_values (ty, coll, sub2) with
          | Some tbl -> distinct_prior tbl
          | None -> 0.5
        in
        let ep path = attr_term "r" path in
        let check =
          intra_check ty
            (Check.Cmp
               ( Check.Eq,
                 ep (Printf.sprintf "%s[i].%s" coll sub),
                 ep (Printf.sprintf "%s[j].%s" coll sub) ))
            (Check.Cmp
               ( Check.Ne,
                 ep (Printf.sprintf "%s[i].%s" coll sub2),
                 ep (Printf.sprintf "%s[j].%s" coll sub2) ))
        in
        out :=
          Candidate.make ~template_id:"IDX-EQ-NE" ~support:p ~confidence:conf
            ~lift:(lift_of conf prior) check
          :: !out
      end)
    eqne;
  Hashtbl.iter
    (fun (ty, coll, sub) (p, d) ->
      if p >= cfg.min_support then begin
        let conf = float_of_int d /. float_of_int p in
        let prior =
          match Hashtbl.find_opt elem_values (ty, coll, sub) with
          | Some tbl -> distinct_prior tbl
          | None -> 0.5
        in
        let ep path = attr_term "r" path in
        let check =
          intra_check ty
            (Check.Cmp
               ( Check.Ne,
                 ep (Printf.sprintf "%s[i].%s" coll sub),
                 Check.Const Value.Null ))
            (Check.Cmp
               ( Check.Ne,
                 ep (Printf.sprintf "%s[i].%s" coll sub),
                 ep (Printf.sprintf "%s[j].%s" coll sub) ))
        in
        out :=
          Candidate.make ~template_id:"IDX-NE" ~support:p ~confidence:conf
            ~lift:(lift_of conf prior) check
          :: !out
      end)
    ne;
  !out

let mine_indexed ?telemetry ?jobs ?tables cfg _kb programs =
  emit_indexed cfg
    (cached_tables ?telemetry tables ~stage:"miner-idx" ~extra:[ "indexed" ]
       ~write:write_indexed ~read:read_indexed (fun () ->
         count_sharded ?jobs count_indexed merge_indexed programs))

(* ------------------------------------------------------------------ *)
(* Inter-resource mining                                               *)
(* ------------------------------------------------------------------ *)

type conn_key = string * string * string * string (* src ty, src attr, dst ty, dst attr *)

let scalar_paths r =
  List.filter (fun p -> is_scalar (Resource.get r p)) (Resource.attr_paths r)

type inter_counts = {
  edgecount : (conn_key, int) Hashtbl.t;
  paireq : (conn_key * string * string, int) Hashtbl.t;
  dstval : (conn_key * string * Value.t, int) Hashtbl.t;
  srcval : (conn_key * string * Value.t, int) Hashtbl.t;
  dstnull : (conn_key * string, int) Hashtbl.t;
  cond2 : (conn_key * string * Value.t, int) Hashtbl.t;
  both2 : (conn_key * string * Value.t * string * Value.t, int) Hashtbl.t;
  containc : (conn_key * string * string, int * int) Hashtbl.t;
  sibcount : (conn_key, int) Hashtbl.t;
  sib_nooverlap : (conn_key * string, int * int) Hashtbl.t;
  sib_ne : (conn_key * string, int * int) Hashtbl.t;
  assoc_eq : (conn_key * conn_key * string * string, int * int) Hashtbl.t;
  assoc_count : (conn_key * conn_key, int) Hashtbl.t;
  outdeg_one : (conn_key, int) Hashtbl.t;
  outdeg_excl : (conn_key, int) Hashtbl.t;
  copath_pairs : (string * string * string, int * int) Hashtbl.t;
  patheq : (string * string * string * string, int * int) Hashtbl.t;
  deg_max :
    (string * string * Value.t * string * [ `In | `Out ], int * int) Hashtbl.t;
  name_excl : (string * string * string, int * int) Hashtbl.t;
}

(* [reserved_names] is read-only during counting, so it is shared across
   shards rather than merged. *)
let count_inter provider cfg kb reserved_names programs =
  let edgecount : (conn_key, int) Hashtbl.t = Hashtbl.create 128 in
  let paireq : (conn_key * string * string, int) Hashtbl.t = Hashtbl.create 512 in
  let dstval : (conn_key * string * Value.t, int) Hashtbl.t = Hashtbl.create 512 in
  let srcval : (conn_key * string * Value.t, int) Hashtbl.t = Hashtbl.create 512 in
  let dstnull : (conn_key * string, int) Hashtbl.t = Hashtbl.create 512 in
  let cond2 : (conn_key * string * Value.t, int) Hashtbl.t = Hashtbl.create 512 in
  let both2 : (conn_key * string * Value.t * string * Value.t, int) Hashtbl.t =
    Hashtbl.create 512
  in
  let containc : (conn_key * string * string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let sibcount : (conn_key, int) Hashtbl.t = Hashtbl.create 64 in
  let sib_nooverlap : (conn_key * string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let sib_ne : (conn_key * string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let assoc_eq : (conn_key * conn_key * string * string, int * int) Hashtbl.t =
    Hashtbl.create 128
  in
  let assoc_count : (conn_key * conn_key, int) Hashtbl.t = Hashtbl.create 64 in
  let outdeg_one : (conn_key, int) Hashtbl.t = Hashtbl.create 64 in
  let outdeg_excl : (conn_key, int) Hashtbl.t = Hashtbl.create 64 in
  let copath_pairs : (string * string * string, int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let patheq : (string * string * string * string, int * int) Hashtbl.t =
    (* (src ty, dst ty, src attr, dst attr) -> (pairs, equal) *)
    Hashtbl.create 256
  in
  let deg_max :
      (string * string * Value.t * string * [ `In | `Out ], int * int) Hashtbl.t =
    Hashtbl.create 256
  in
  let name_excl : (string * string * string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let enum_facts r =
    let ty = r.Resource.rtype in
    List.filter_map
      (fun path ->
        let v = Resource.get r path in
        if is_scalar v && (not cfg.use_kb || List.mem v (Kb.enum_values kb ~rtype:ty ~attr:path))
        then Some (path, v)
        else None)
      (flat_paths provider r)
  in
  let observe_program prog =
    let graph = Graph.build prog in
    let edges = Graph.edges graph in
    let find id = Program.find prog id in
    List.iter
      (fun (e : Graph.edge) ->
        match (find e.Graph.src, find e.Graph.dst) with
        | Some a, Some b ->
            let k =
              ( e.Graph.src.Resource.rtype,
                e.Graph.src_attr,
                e.Graph.dst.Resource.rtype,
                e.Graph.dst_attr )
            in
            incr_tbl edgecount k;
            (* equality join between a and b attributes *)
            let b_by_value = Hashtbl.create 16 in
            List.iter
              (fun p -> Hashtbl.add b_by_value (Resource.get b p) p)
              (scalar_paths b);
            List.iter
              (fun pa ->
                let va = Resource.get a pa in
                List.iter
                  (fun pb -> incr_tbl paireq (k, pa, pb))
                  (Hashtbl.find_all b_by_value va))
              (scalar_paths a);
            (* dst/src enum values *)
            List.iter (fun (p, v) -> incr_tbl dstval (k, p, v)) (enum_facts b);
            List.iter (fun (p, v) -> incr_tbl srcval (k, p, v)) (enum_facts a);
            (* reserved dst names *)
            (match Resource.get b "name" with
            | Value.Str s when Hashtbl.mem reserved_names (b.Resource.rtype, s) ->
                incr_tbl dstval (k, "name", Value.Str s)
            | _ -> ());
            (* dst null-ness of optional attrs known to the KB *)
            List.iter
              (fun (info : Kb.attr_info) ->
                if
                  info.Kb.requirement = Some Schema.Optional
                  && Value.is_null (Resource.get b info.Kb.attr)
                  && (not (String.contains info.Kb.attr '.'))
                then incr_tbl dstnull (k, info.Kb.attr))
              (Kb.attrs_of_type kb b.Resource.rtype);
            (* conditional: src enum -> dst enum *)
            List.iter
              (fun (pa, va) ->
                incr_tbl cond2 (k, pa, va);
                List.iter
                  (fun (pb, vb) -> incr_tbl both2 (k, pa, va, pb, vb))
                  (enum_facts b))
              (enum_facts a);
            (* containment between CIDR attributes *)
            List.iter
              (fun ca ->
                let va = Resource.get_all a ca in
                List.iter
                  (fun cb ->
                    let vb = Resource.get_all b cb in
                    if va <> [] && vb <> [] then begin
                      let cidrs vs =
                        List.concat_map
                          (fun v ->
                            match v with
                            | Value.Str s -> Option.to_list (Cidr.of_string s)
                            | Value.List items ->
                                List.filter_map
                                  (function
                                    | Value.Str s -> Cidr.of_string s | _ -> None)
                                  items
                            | _ -> [])
                          vs
                      in
                      let ca_c = cidrs va and cb_c = cidrs vb in
                      if ca_c <> [] && cb_c <> [] then begin
                        let contained =
                          List.for_all
                            (fun x -> List.exists (fun y -> Cidr.contains y x) cb_c)
                            ca_c
                        in
                        let d, s =
                          Option.value ~default:(0, 0)
                            (Hashtbl.find_opt containc (k, ca, cb))
                        in
                        Hashtbl.replace containc (k, ca, cb)
                          (d + 1, s + if contained then 1 else 0)
                      end
                    end)
                  (Kb.cidr_attrs kb b.Resource.rtype))
              (Kb.cidr_attrs kb a.Resource.rtype);
            (* aggregation facts per edge *)
            let same_ty = Graph.Type e.Graph.src.Resource.rtype in
            let od = Graph.outdegree graph e.Graph.dst same_ty in
            if od = 1 then incr_tbl outdeg_one k;
            let od_other =
              Graph.outdegree graph e.Graph.dst
                (Graph.Not_type e.Graph.src.Resource.rtype)
            in
            if od_other = 0 then incr_tbl outdeg_excl k
        | _ -> ())
      edges;
    (* sibling analysis: group in-edges per (dst resource, kind) *)
    let sib_groups = Hashtbl.create 16 in
    List.iter
      (fun (e : Graph.edge) ->
        let k =
          ( e.Graph.src.Resource.rtype,
            e.Graph.src_attr,
            e.Graph.dst.Resource.rtype,
            e.Graph.dst_attr )
        in
        Hashtbl.replace sib_groups
          (e.Graph.dst, k)
          (e.Graph.src
          :: Option.value ~default:[] (Hashtbl.find_opt sib_groups (e.Graph.dst, k))))
      edges;
    Hashtbl.iter
      (fun ((_dst : Resource.id), (k : conn_key)) srcs ->
        let src_ty, _, _, _ = k in
        let resources = List.filter_map find srcs in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if i < j then begin
                  incr_tbl sibcount k;
                  (* CIDR disjointness *)
                  List.iter
                    (fun cattr ->
                      match
                        ( (Resource.get a cattr : Value.t),
                          (Resource.get b cattr : Value.t) )
                      with
                      | Value.Str sa, Value.Str sb -> (
                          match (Cidr.of_string sa, Cidr.of_string sb) with
                          | Some c1, Some c2 ->
                              let d, s =
                                Option.value ~default:(0, 0)
                                  (Hashtbl.find_opt sib_nooverlap (k, cattr))
                              in
                              Hashtbl.replace sib_nooverlap (k, cattr)
                                (d + 1, s + if Cidr.overlap c1 c2 then 0 else 1)
                          | _ -> ())
                      | _ -> ())
                    (Kb.cidr_attrs kb src_ty);
                  (* attribute distinctness *)
                  List.iter
                    (fun p ->
                      let va = Resource.get a p and vb = Resource.get b p in
                      if is_scalar va && is_scalar vb then begin
                        let d, s =
                          Option.value ~default:(0, 0)
                            (Hashtbl.find_opt sib_ne (k, p))
                        in
                        Hashtbl.replace sib_ne (k, p)
                          (d + 1, s + if Value.equal va vb then 0 else 1)
                      end)
                    (scalar_paths a)
                end)
              resources)
          resources)
      sib_groups;
    (* association analysis: resources with two outgoing reference kinds *)
    List.iter
      (fun c ->
        let outs = Graph.edges_from graph (Resource.id c) in
        List.iter
          (fun (e1 : Graph.edge) ->
            List.iter
              (fun (e2 : Graph.edge) ->
                if
                  not (String.equal e1.Graph.src_attr e2.Graph.src_attr)
                  && not (Resource.equal_id e1.Graph.dst e2.Graph.dst)
                then begin
                  let k1 =
                    ( c.Resource.rtype,
                      e1.Graph.src_attr,
                      e1.Graph.dst.Resource.rtype,
                      e1.Graph.dst_attr )
                  and k2 =
                    ( c.Resource.rtype,
                      e2.Graph.src_attr,
                      e2.Graph.dst.Resource.rtype,
                      e2.Graph.dst_attr )
                  in
                  incr_tbl assoc_count (k1, k2);
                  match (find e1.Graph.dst, find e2.Graph.dst) with
                  | Some a, Some b ->
                      (* compare attributes that share a path or are
                         name-formatted on both sides *)
                      List.iter
                        (fun pa ->
                          List.iter
                            (fun pb ->
                              let comparable =
                                String.equal pa pb
                                ||
                                let name_like ty p =
                                  match Kb.attr_info kb ~rtype:ty ~attr:p with
                                  | Some { Kb.format = Schema.Name_format; _ } -> true
                                  | _ -> false
                                in
                                name_like a.Resource.rtype pa
                                && name_like b.Resource.rtype pb
                              in
                              if comparable then begin
                                let va = Resource.get a pa and vb = Resource.get b pb in
                                if is_scalar va && is_scalar vb then begin
                                  let d, s =
                                    Option.value ~default:(0, 0)
                                      (Hashtbl.find_opt assoc_eq (k1, k2, pa, pb))
                                  in
                                  Hashtbl.replace assoc_eq (k1, k2, pa, pb)
                                    (d + 1, s + if Value.equal va vb then 1 else 0)
                                end
                              end)
                            (scalar_paths b))
                        (scalar_paths a)
                  | _ -> ()
                end)
              outs)
          outs)
      (Program.resources prog);
    (* path-based attribute agreement: reachable pairs with matching
       scalar attributes (e.g. NIC and VPC two hops apart agreeing on
       location) *)
    List.iter
      (fun r1 ->
        let id1 = Resource.id r1 in
        List.iter
          (fun (id2 : Resource.id) ->
            if not (String.equal id1.Resource.rtype id2.Resource.rtype) then
              match find id2 with
              | None -> ()
              | Some r2 ->
                  (* compare attributes sharing a dotted path; the shared
                     name keeps the family small and meaningful *)
                  List.iter
                    (fun pa ->
                      let va = Resource.get r1 pa in
                      let vb = Resource.get r2 pa in
                      if is_scalar va && is_scalar vb then begin
                        let key =
                          (id1.Resource.rtype, id2.Resource.rtype, pa, pa)
                        in
                        let d, e =
                          Option.value ~default:(0, 0) (Hashtbl.find_opt patheq key)
                        in
                        Hashtbl.replace patheq key
                          (d + 1, e + if Value.equal va vb then 1 else 0)
                      end)
                    (scalar_paths r1))
          (Graph.reachable_from graph id1))
      (Program.resources prog);
    (* copath overlap: resources reaching two same-type CIDR-bearing nodes *)
    List.iter
      (fun t ->
        let reach = Graph.reachable_from graph (Resource.id t) in
        List.iteri
          (fun i (v1 : Resource.id) ->
            List.iteri
              (fun j (v2 : Resource.id) ->
                if i < j && String.equal v1.Resource.rtype v2.Resource.rtype then
                  match (find v1, find v2) with
                  | Some r1, Some r2 ->
                      List.iter
                        (fun cattr ->
                          let c1 =
                            match Resource.get r1 cattr with
                            | Value.Str s -> Cidr.of_string s
                            | Value.List (Value.Str s :: _) -> Cidr.of_string s
                            | _ -> None
                          and c2 =
                            match Resource.get r2 cattr with
                            | Value.Str s -> Cidr.of_string s
                            | Value.List (Value.Str s :: _) -> Cidr.of_string s
                            | _ -> None
                          in
                          match (c1, c2) with
                          | Some c1, Some c2 ->
                              let key = (t.Resource.rtype, v1.Resource.rtype, cattr) in
                              let d, s =
                                Option.value ~default:(0, 0)
                                  (Hashtbl.find_opt copath_pairs key)
                              in
                              Hashtbl.replace copath_pairs key
                                (d + 1, s + if Cidr.overlap c1 c2 then 0 else 1)
                          | _ -> ())
                        (Kb.cidr_attrs kb v1.Resource.rtype)
                  | _ -> ())
              reach)
          reach)
      (Program.resources prog);
    (* degree maxima conditioned on enum attributes *)
    List.iter
      (fun r ->
        let id = Resource.id r in
        let peer_types_out =
          List.map (fun (e : Graph.edge) -> e.Graph.dst.Resource.rtype) (Graph.edges_from graph id)
        and peer_types_in =
          List.map (fun (e : Graph.edge) -> e.Graph.src.Resource.rtype) (Graph.edges_to graph id)
        in
        let dedup = List.sort_uniq String.compare in
        List.iter
          (fun (p, v) ->
            List.iter
              (fun tau ->
                let d = Graph.indegree graph id (Graph.Type tau) in
                let key = (r.Resource.rtype, p, v, tau, `In) in
                let hi, c = Option.value ~default:(d, 0) (Hashtbl.find_opt deg_max key) in
                Hashtbl.replace deg_max key (max hi d, c + 1))
              (dedup peer_types_out);
            List.iter
              (fun tau ->
                let d = Graph.outdegree graph id (Graph.Type tau) in
                let key = (r.Resource.rtype, p, v, tau, `Out) in
                let hi, c = Option.value ~default:(d, 0) (Hashtbl.find_opt deg_max key) in
                Hashtbl.replace deg_max key (max hi d, c + 1))
              (dedup peer_types_in))
          (enum_facts r))
      (Program.resources prog);
    (* reserved names exclusivity *)
    List.iter
      (fun r ->
        match Resource.get r "name" with
        | Value.Str s when Hashtbl.mem reserved_names (r.Resource.rtype, s) ->
            let id = Resource.id r in
            let referrers =
              List.map
                (fun (e : Graph.edge) -> e.Graph.src.Resource.rtype)
                (Graph.edges_to graph id)
            in
            List.iter
              (fun tau ->
                let other = Graph.outdegree graph id (Graph.Not_type tau) in
                let key = (r.Resource.rtype, s, tau) in
                let d, sat =
                  Option.value ~default:(0, 0) (Hashtbl.find_opt name_excl key)
                in
                Hashtbl.replace name_excl key (d + 1, sat + if other = 0 then 1 else 0))
              (List.sort_uniq String.compare referrers)
        | _ -> ())
      (Program.resources prog)
  in
  List.iter observe_program programs;
  {
    edgecount;
    paireq;
    dstval;
    srcval;
    dstnull;
    cond2;
    both2;
    containc;
    sibcount;
    sib_nooverlap;
    sib_ne;
    assoc_eq;
    assoc_count;
    outdeg_one;
    outdeg_excl;
    copath_pairs;
    patheq;
    deg_max;
    name_excl;
  }

let merge_inter dst src =
  merge_counts dst.edgecount src.edgecount;
  merge_counts dst.paireq src.paireq;
  merge_counts dst.dstval src.dstval;
  merge_counts dst.srcval src.srcval;
  merge_counts dst.dstnull src.dstnull;
  merge_counts dst.cond2 src.cond2;
  merge_counts dst.both2 src.both2;
  merge_counts dst.sibcount src.sibcount;
  merge_counts dst.assoc_count src.assoc_count;
  merge_counts dst.outdeg_one src.outdeg_one;
  merge_counts dst.outdeg_excl src.outdeg_excl;
  merge_stats dst.containc src.containc;
  merge_stats dst.sib_nooverlap src.sib_nooverlap;
  merge_stats dst.sib_ne src.sib_ne;
  merge_stats dst.assoc_eq src.assoc_eq;
  merge_stats dst.copath_pairs src.copath_pairs;
  merge_stats dst.patheq src.patheq;
  merge_stats dst.name_excl src.name_excl;
  Hashtbl.iter
    (fun k (hi, c) ->
      let merged =
        match Hashtbl.find_opt dst.deg_max k with
        | None -> (hi, c)
        | Some (hi0, c0) -> (max hi hi0, c0 + c)
      in
      Hashtbl.replace dst.deg_max k merged)
    src.deg_max;
  dst

(* Codec for the inter counting tables. [deg_max]'s direction is a byte
   tag so decoding round-trips; Codec.write_table's canonical key sort
   keeps equal tables byte-equal regardless of merge history. *)
let write_conn b (src_ty, src_attr, dst_ty, dst_attr) =
  Codec.write_string b src_ty;
  Codec.write_string b src_attr;
  Codec.write_string b dst_ty;
  Codec.write_string b dst_attr

let read_conn s =
  let src_ty = Codec.read_string s in
  let src_attr = Codec.read_string s in
  let dst_ty = Codec.read_string s in
  let dst_attr = Codec.read_string s in
  (src_ty, src_attr, dst_ty, dst_attr)

let write_int_pair b (d, n) =
  Codec.write_int b d;
  Codec.write_int b n

let read_int_pair s =
  let d = Codec.read_int s in
  let n = Codec.read_int s in
  (d, n)

let write_inter b (c : inter_counts) =
  let conn_str b (k, x) =
    write_conn b k;
    Codec.write_string b x
  in
  let conn_str2 b (k, x, y) =
    conn_str b (k, x);
    Codec.write_string b y
  in
  let conn_str_val b (k, x, v) =
    conn_str b (k, x);
    Value.write b v
  in
  let str3 b (x, y, z) =
    Codec.write_string b x;
    Codec.write_string b y;
    Codec.write_string b z
  in
  Codec.write_table write_conn Codec.write_int b c.edgecount;
  Codec.write_table conn_str2 Codec.write_int b c.paireq;
  Codec.write_table conn_str_val Codec.write_int b c.dstval;
  Codec.write_table conn_str_val Codec.write_int b c.srcval;
  Codec.write_table conn_str Codec.write_int b c.dstnull;
  Codec.write_table conn_str_val Codec.write_int b c.cond2;
  Codec.write_table
    (fun b (k, x, v, y, w) ->
      conn_str_val b (k, x, v);
      Codec.write_string b y;
      Value.write b w)
    Codec.write_int b c.both2;
  Codec.write_table conn_str2 write_int_pair b c.containc;
  Codec.write_table write_conn Codec.write_int b c.sibcount;
  Codec.write_table conn_str write_int_pair b c.sib_nooverlap;
  Codec.write_table conn_str write_int_pair b c.sib_ne;
  Codec.write_table
    (fun b (k1, k2, x, y) ->
      write_conn b k1;
      write_conn b k2;
      Codec.write_string b x;
      Codec.write_string b y)
    write_int_pair b c.assoc_eq;
  Codec.write_table
    (fun b (k1, k2) ->
      write_conn b k1;
      write_conn b k2)
    Codec.write_int b c.assoc_count;
  Codec.write_table write_conn Codec.write_int b c.outdeg_one;
  Codec.write_table write_conn Codec.write_int b c.outdeg_excl;
  Codec.write_table str3 write_int_pair b c.copath_pairs;
  Codec.write_table
    (fun b (x, y, z, w) ->
      str3 b (x, y, z);
      Codec.write_string b w)
    write_int_pair b c.patheq;
  Codec.write_table
    (fun b (ty, p, v, tau, dir) ->
      Codec.write_string b ty;
      Codec.write_string b p;
      Value.write b v;
      Codec.write_string b tau;
      Codec.write_byte b (match dir with `In -> 0 | `Out -> 1))
    write_int_pair b c.deg_max;
  Codec.write_table str3 write_int_pair b c.name_excl

let read_inter s =
  let conn_str s =
    let k = read_conn s in
    let x = Codec.read_string s in
    (k, x)
  in
  let conn_str2 s =
    let k, x = conn_str s in
    let y = Codec.read_string s in
    (k, x, y)
  in
  let conn_str_val s =
    let k, x = conn_str s in
    let v = Value.read s in
    (k, x, v)
  in
  let str3 s =
    let x = Codec.read_string s in
    let y = Codec.read_string s in
    let z = Codec.read_string s in
    (x, y, z)
  in
  let edgecount = Codec.read_table read_conn Codec.read_int s in
  let paireq = Codec.read_table conn_str2 Codec.read_int s in
  let dstval = Codec.read_table conn_str_val Codec.read_int s in
  let srcval = Codec.read_table conn_str_val Codec.read_int s in
  let dstnull = Codec.read_table conn_str Codec.read_int s in
  let cond2 = Codec.read_table conn_str_val Codec.read_int s in
  let both2 =
    Codec.read_table
      (fun s ->
        let k, x, v = conn_str_val s in
        let y = Codec.read_string s in
        let w = Value.read s in
        (k, x, v, y, w))
      Codec.read_int s
  in
  let containc = Codec.read_table conn_str2 read_int_pair s in
  let sibcount = Codec.read_table read_conn Codec.read_int s in
  let sib_nooverlap = Codec.read_table conn_str read_int_pair s in
  let sib_ne = Codec.read_table conn_str read_int_pair s in
  let assoc_eq =
    Codec.read_table
      (fun s ->
        let k1 = read_conn s in
        let k2 = read_conn s in
        let x = Codec.read_string s in
        let y = Codec.read_string s in
        (k1, k2, x, y))
      read_int_pair s
  in
  let assoc_count =
    Codec.read_table
      (fun s ->
        let k1 = read_conn s in
        let k2 = read_conn s in
        (k1, k2))
      Codec.read_int s
  in
  let outdeg_one = Codec.read_table read_conn Codec.read_int s in
  let outdeg_excl = Codec.read_table read_conn Codec.read_int s in
  let copath_pairs = Codec.read_table str3 read_int_pair s in
  let patheq =
    Codec.read_table
      (fun s ->
        let x, y, z = str3 s in
        let w = Codec.read_string s in
        (x, y, z, w))
      read_int_pair s
  in
  let deg_max =
    Codec.read_table
      (fun s ->
        let ty = Codec.read_string s in
        let p = Codec.read_string s in
        let v = Value.read s in
        let tau = Codec.read_string s in
        let dir =
          match Codec.read_byte s with
          | 0 -> `In
          | 1 -> `Out
          | n -> Codec.corrupt "bad degree direction tag %d" n
        in
        (ty, p, v, tau, dir))
      read_int_pair s
  in
  let name_excl = Codec.read_table str3 read_int_pair s in
  {
    edgecount;
    paireq;
    dstval;
    srcval;
    dstnull;
    cond2;
    both2;
    containc;
    sibcount;
    sib_nooverlap;
    sib_ne;
    assoc_eq;
    assoc_count;
    outdeg_one;
    outdeg_excl;
    copath_pairs;
    patheq;
    deg_max;
    name_excl;
  }

(* Reserved-name candidates are a pure function of the finalized KB —
   fixed before any inter counting starts, and shared read-only across
   shards (streamed or parallel). *)
let reserved_names_of kb =
  let reserved_names : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ty ->
      match Kb.attr_info kb ~rtype:ty ~attr:"name" with
      | None -> ()
      | Some info ->
          List.iter
            (fun (v, c) ->
              match v with
              | Value.Str s when c >= 5 -> Hashtbl.replace reserved_names (ty, s) c
              | _ -> ())
            info.Kb.observed)
    (Kb.types kb);
  reserved_names

let emit_inter cfg kb
    {
      edgecount;
      paireq;
      dstval;
      srcval;
      dstnull;
      cond2;
      both2;
      containc;
      sibcount;
      sib_nooverlap;
      sib_ne;
      assoc_eq;
      assoc_count;
      outdeg_one;
      outdeg_excl;
      copath_pairs;
      patheq;
      deg_max;
      name_excl;
    } =
  (* ---- emit ---- *)
  let out = ref [] in
  let emit c = out := c :: !out in
  let conn_cond k =
    let src_ty, src_attr, dst_ty, dst_attr = k in
    let bindings =
      [ { Check.var = "r1"; btype = src_ty }; { Check.var = "r2"; btype = dst_ty } ]
    in
    ( bindings,
      Check.Conn ({ Check.var = "r1"; attr = src_attr }, { Check.var = "r2"; attr = dst_attr })
    )
  in
  Hashtbl.iter
    (fun ((k, pa, pb) : conn_key * string * string) c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let src_ty, _, dst_ty, dst_attr = k in
        (* skip the tautological reference equality itself *)
        if not (String.equal pb dst_attr) then begin
          let conf = float_of_int c /. float_of_int support in
          let prior = eq_baseline kb (src_ty, pa) (dst_ty, pb) in
          let bindings, cond = conn_cond k in
          emit
            (Candidate.make ~template_id:"CONN-ATTR-EQ" ~support ~confidence:conf
               ~lift:(lift_of conf prior)
               (Check.make ~source:Check.Mined bindings cond
                  (Check.Cmp (Check.Eq, attr_term "r1" pa, attr_term "r2" pb))))
        end
      end)
    paireq;
  Hashtbl.iter
    (fun (k, p, v) c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let _, _, dst_ty, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let prior = value_prior kb dst_ty p v in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-DST-EQ" ~support ~confidence:conf
             ~lift:(lift_of conf prior)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Cmp (Check.Eq, attr_term "r2" p, Check.Const v))))
      end)
    dstval;
  Hashtbl.iter
    (fun (k, p, v) c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let src_ty, _, _, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let prior = value_prior kb src_ty p v in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-SRC-EQ" ~support ~confidence:conf
             ~lift:(lift_of conf prior)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Cmp (Check.Eq, attr_term "r1" p, Check.Const v))))
      end)
    srcval;
  Hashtbl.iter
    (fun (k, p) c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let _, _, dst_ty, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let prior = 1.0 -. presence_prior kb dst_ty p in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-DST-NULL" ~support ~confidence:conf
             ~lift:(lift_of conf prior)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Cmp (Check.Eq, attr_term "r2" p, Check.Const Value.Null))))
      end)
    dstnull;
  Hashtbl.iter
    (fun (k, pa, va, pb, vb) c ->
      let support = get_count cond2 (k, pa, va) in
      if support >= cfg.min_support then begin
        let _, _, dst_ty, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let prior = value_prior kb dst_ty pb vb in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-COND-DST-EQ" ~support ~confidence:conf
             ~lift:(lift_of conf prior)
             (Check.make ~source:Check.Mined bindings
                (Check.And
                   [ cond; Check.Cmp (Check.Eq, attr_term "r1" pa, Check.Const va) ])
                (Check.Cmp (Check.Eq, attr_term "r2" pb, Check.Const vb))))
      end)
    both2;
  Hashtbl.iter
    (fun (k, ca, cb) (d, s) ->
      if d >= cfg.min_support then begin
        let conf = float_of_int s /. float_of_int d in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-CONTAIN" ~support:d ~confidence:conf
             ~lift:(lift_of conf 0.5)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Func (Check.Contain, attr_term "r2" cb, attr_term "r1" ca)))
          )
      end)
    containc;
  Hashtbl.iter
    (fun (k, cattr) (d, s) ->
      if d >= cfg.min_support then begin
        let src_ty, src_attr, dst_ty, dst_attr = k in
        let conf = float_of_int s /. float_of_int d in
        let bindings =
          [
            { Check.var = "r1"; btype = src_ty };
            { Check.var = "r2"; btype = src_ty };
            { Check.var = "r3"; btype = dst_ty };
          ]
        in
        let cond =
          Check.Coconn
            ( ({ Check.var = "r1"; attr = src_attr }, { Check.var = "r3"; attr = dst_attr }),
              ({ Check.var = "r2"; attr = src_attr }, { Check.var = "r3"; attr = dst_attr })
            )
        in
        emit
          (Candidate.make ~template_id:"SIBLING-OVERLAP"
             ~support:(get_count sibcount k) ~confidence:conf ~lift:(lift_of conf 0.5)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Not (Check.Func (Check.Overlap, attr_term "r1" cattr, attr_term "r2" cattr)))))
      end)
    sib_nooverlap;
  Hashtbl.iter
    (fun (k, p) (d, s) ->
      if d >= cfg.min_support then begin
        let src_ty, src_attr, dst_ty, dst_attr = k in
        let conf = float_of_int s /. float_of_int d in
        let prior = 1.0 -. eq_baseline kb (src_ty, p) (src_ty, p) in
        if conf >= 0.8 then begin
          let bindings =
            [
              { Check.var = "r1"; btype = src_ty };
              { Check.var = "r2"; btype = src_ty };
              { Check.var = "r3"; btype = dst_ty };
            ]
          in
          let cond =
            Check.Coconn
              ( ({ Check.var = "r1"; attr = src_attr }, { Check.var = "r3"; attr = dst_attr }),
                ({ Check.var = "r2"; attr = src_attr }, { Check.var = "r3"; attr = dst_attr })
              )
          in
          emit
            (Candidate.make ~template_id:"SIBLING-NE" ~support:d ~confidence:conf
               ~lift:(lift_of conf prior)
               (Check.make ~source:Check.Mined bindings cond
                  (Check.Cmp (Check.Ne, attr_term "r1" p, attr_term "r2" p))))
        end
      end)
    sib_ne;
  Hashtbl.iter
    (fun (k1, k2, pa, pb) (d, s) ->
      let support = get_count assoc_count (k1, k2) in
      if support >= cfg.min_support && d >= cfg.min_support then begin
        let c_ty, attr1, a_ty, dst1 = k1 in
        let _, attr2, b_ty, dst2 = k2 in
        let bindings =
          [
            { Check.var = "r3"; btype = c_ty };
            { Check.var = "r1"; btype = a_ty };
            { Check.var = "r2"; btype = b_ty };
          ]
        in
        let cond =
          Check.Coconn
            ( ({ Check.var = "r3"; attr = attr1 }, { Check.var = "r1"; attr = dst1 }),
              ({ Check.var = "r3"; attr = attr2 }, { Check.var = "r2"; attr = dst2 }) )
        in
        let conf_eq = float_of_int s /. float_of_int d in
        let prior_eq = eq_baseline kb (a_ty, pa) (b_ty, pb) in
        if conf_eq >= 0.8 then
          emit
            (Candidate.make ~template_id:"ASSOC-ATTR-EQ" ~support:d ~confidence:conf_eq
               ~lift:(lift_of conf_eq prior_eq)
               (Check.make ~source:Check.Mined bindings cond
                  (Check.Cmp (Check.Eq, attr_term "r1" pa, attr_term "r2" pb))));
        let conf_ne = 1.0 -. conf_eq in
        if conf_ne >= 0.8 then
          emit
            (Candidate.make ~template_id:"ASSOC-ATTR-NE" ~support:d ~confidence:conf_ne
               ~lift:(lift_of conf_ne (1.0 -. prior_eq))
               (Check.make ~source:Check.Mined bindings cond
                  (Check.Cmp (Check.Ne, attr_term "r1" pa, attr_term "r2" pb))))
      end)
    assoc_eq;
  Hashtbl.iter
    (fun (t_ty, v_ty, cattr) (d, s) ->
      if d >= cfg.min_support then begin
        let conf = float_of_int s /. float_of_int d in
        let bindings =
          [
            { Check.var = "r1"; btype = t_ty };
            { Check.var = "r2"; btype = v_ty };
            { Check.var = "r3"; btype = v_ty };
          ]
        in
        let cond = Check.Copath (("r1", "r2"), ("r1", "r3")) in
        emit
          (Candidate.make ~template_id:"COPATH-OVERLAP" ~support:d ~confidence:conf
             ~lift:(lift_of conf 0.5)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Not
                   (Check.Func (Check.Overlap, attr_term "r2" cattr, attr_term "r3" cattr)))))
      end)
    copath_pairs;
  Hashtbl.iter
    (fun k c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let src_ty, _, _, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-OUTDEG-ONE" ~support ~confidence:conf
             ~lift:(lift_of conf 0.7)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Cmp
                   ( Check.Eq,
                     Check.Outdeg ("r2", Graph.Type src_ty),
                     Check.Const (Value.Int 1) ))))
      end)
    outdeg_one;
  Hashtbl.iter
    (fun k c ->
      let support = get_count edgecount k in
      if support >= cfg.min_support then begin
        let src_ty, _, _, _ = k in
        let conf = float_of_int c /. float_of_int support in
        let bindings, cond = conn_cond k in
        emit
          (Candidate.make ~template_id:"CONN-OUTDEG-EXCL" ~support ~confidence:conf
             ~lift:(lift_of conf 0.7)
             (Check.make ~source:Check.Mined bindings cond
                (Check.Cmp
                   ( Check.Eq,
                     Check.Outdeg ("r2", Graph.Not_type src_ty),
                     Check.Const (Value.Int 0) ))))
      end)
    outdeg_excl;
  Hashtbl.iter
    (fun (src_ty, dst_ty, pa, pb) (d, e) ->
      if d >= cfg.min_support && not (String.equal pa "name") then begin
        let conf = float_of_int e /. float_of_int d in
        let prior = eq_baseline kb (src_ty, pa) (dst_ty, pb) in
        let bindings =
          [ { Check.var = "r1"; btype = src_ty }; { Check.var = "r2"; btype = dst_ty } ]
        in
        emit
          (Candidate.make ~template_id:"PATH-ATTR-EQ" ~support:d ~confidence:conf
             ~lift:(lift_of conf prior)
             (Check.make ~source:Check.Mined bindings
                (Check.Path ("r1", "r2"))
                (Check.Cmp (Check.Eq, attr_term "r1" pa, attr_term "r2" pb))))
      end)
    patheq;
  Hashtbl.iter
    (fun (ty, name, tau) (d, s) ->
      if d >= cfg.min_support then begin
        let conf = float_of_int s /. float_of_int d in
        emit
          (Candidate.make ~template_id:"NAME-OUTDEG-EXCL" ~support:d ~confidence:conf
             ~lift:(lift_of conf 0.5)
             (intra_check ty
                (Check.Cmp (Check.Eq, attr_term "r" "name", Check.Const (Value.Str name)))
                (Check.Cmp
                   ( Check.Eq,
                     Check.Outdeg ("r", Graph.Not_type tau),
                     Check.Const (Value.Int 0) ))))
      end)
    name_excl;
  Hashtbl.iter
    (fun (ty, p, v, tau, dir) (hi, c) ->
      if c >= cfg.min_support && hi >= 1 then begin
        let template_id, term =
          match dir with
          | `In -> ("ENUM-INDEG-LE", Check.Indeg ("r", Graph.Type tau))
          | `Out -> ("ENUM-OUTDEG-LE", Check.Outdeg ("r", Graph.Type tau))
        in
        emit
          (Candidate.make ~needs_interpolation:true ~template_id ~support:c
             ~confidence:1.0 ~lift:1.0
             (intra_check ty
                (Check.Cmp (Check.Eq, attr_term "r" p, Check.Const v))
                (Check.Cmp (Check.Le, term, Check.Const (Value.Int hi)))))
      end)
    deg_max;
  !out

let mine_inter ~provider ?jobs cfg kb programs =
  emit_inter cfg kb
    (count_sharded ?jobs
       (count_inter provider cfg kb (reserved_names_of kb))
       merge_inter programs)

(* ------------------------------------------------------------------ *)
(* The tables monoid                                                   *)
(* ------------------------------------------------------------------ *)

(* All three counting families bundled as one mergeable value: the unit
   of work a streamed shard produces, checkpoints and folds. The inter
   family's reserved names come from the finalized KB, so a stream must
   finish its KB fold before the first [count_tables] call. *)
type tables = {
  t_intra : intra_counts;
  t_indexed : indexed_counts;
  t_inter : inter_counts;
}

let count_tables ~provider ?jobs config kb programs =
  {
    t_intra = count_sharded ?jobs (count_intra provider config kb) merge_intra programs;
    t_indexed = count_sharded ?jobs count_indexed merge_indexed programs;
    t_inter =
      count_sharded ?jobs
        (count_inter provider config kb (reserved_names_of kb))
        merge_inter programs;
  }

let merge_tables dst src =
  let _ = merge_intra dst.t_intra src.t_intra in
  let _ = merge_indexed dst.t_indexed src.t_indexed in
  let _ = merge_inter dst.t_inter src.t_inter in
  dst

let write_tables b t =
  write_intra b t.t_intra;
  write_indexed b t.t_indexed;
  write_inter b t.t_inter

let read_tables s =
  let t_intra = read_intra s in
  let t_indexed = read_indexed s in
  let t_inter = read_inter s in
  { t_intra; t_indexed; t_inter }

let emit_tables config kb t =
  Candidate.dedup
    (emit_intra config kb t.t_intra
    @ emit_indexed config t.t_indexed
    @ emit_inter config kb t.t_inter)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let materialize ~provider ?jobs programs =
  Parallel.map ?jobs
    (fun p ->
      Program.of_resources
        (List.map (Defaults.effective provider) (Program.resources p)))
    programs

let mine_intra ~provider ?(config = default_config) ?telemetry ?jobs ?tables kb
    programs =
  let programs = materialize ~provider ?jobs programs in
  Candidate.dedup
    (mine_intra_families ~provider ?telemetry ?jobs ?tables config kb programs
    @ mine_indexed ?telemetry ?jobs ?tables config kb programs)

let mine ~provider ?(config = default_config) ?telemetry ?jobs ?tables kb
    programs =
  let programs = materialize ~provider ?jobs programs in
  Candidate.dedup
    (mine_intra_families ~provider ?telemetry ?jobs ?tables config kb programs
    @ mine_indexed ?telemetry ?jobs ?tables config kb programs
    (* the inter tables depend on KB-derived reserved names, so they are
       cached one level up, at the mined-candidate-set granularity *)
    @ mine_inter ~provider ?jobs config kb programs)

let intra_counts_by_type ~provider ?jobs ~use_kb kb programs =
  let config = { default_config with use_kb } in
  let candidates = mine_intra ~provider ~config ?jobs kb programs in
  let by_type = Hashtbl.create 64 in
  List.iter
    (fun (c : Candidate.t) ->
      match c.Candidate.check.Check.bindings with
      | [ { Check.btype; _ } ] -> incr_tbl by_type btype
      | _ -> ())
    candidates;
  List.filter_map
    (fun ty ->
      match provider.Provider.find_schema ty with
      | None -> None
      | Some schema ->
          Some (ty, Schema.attr_count schema, get_count by_type ty))
    (Kb.types kb)
