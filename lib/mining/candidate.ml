module Check = Zodiac_spec.Check
module Spec_printer = Zodiac_spec.Spec_printer

type t = {
  check : Check.t;
  template_id : string;
  support : int;
  confidence : float;
  lift : float;
  needs_interpolation : bool;
}

let make ?(needs_interpolation = false) ~template_id ~support ~confidence ~lift check
    =
  { check; template_id; support; confidence; lift; needs_interpolation }

(* Total preference order for two candidates of the same cid: higher
   support wins, then higher confidence/lift, then template id. Total so
   that the dedup winner (and hence the final list) does not depend on
   emission order, which varies with counting-shard boundaries. *)
let preferred a b =
  match Int.compare a.support b.support with
  | 0 -> (
      match Float.compare a.confidence b.confidence with
      | 0 -> (
          match Float.compare a.lift b.lift with
          | 0 -> (
              match Bool.compare b.needs_interpolation a.needs_interpolation with
              | 0 -> String.compare b.template_id a.template_id
              | n -> n)
          | n -> n)
      | n -> n)
  | n -> n

let dedup candidates =
  let table = Hashtbl.create 256 in
  List.iter
    (fun c ->
      let key = c.check.Check.cid in
      match Hashtbl.find_opt table key with
      | Some existing when preferred existing c >= 0 -> ()
      | Some _ | None -> Hashtbl.replace table key c)
    candidates;
  Hashtbl.fold (fun _ c acc -> c :: acc) table []
  |> List.sort (fun a b ->
         match Int.compare b.support a.support with
         | 0 -> String.compare a.check.Check.cid b.check.Check.cid
         | n -> n)

module Codec = Zodiac_util.Codec

let write b c =
  Check.write b c.check;
  Codec.write_string b c.template_id;
  Codec.write_int b c.support;
  Codec.write_float b c.confidence;
  Codec.write_float b c.lift;
  Codec.write_bool b c.needs_interpolation

let read s =
  let check = Check.read s in
  let template_id = Codec.read_string s in
  let support = Codec.read_int s in
  let confidence = Codec.read_float s in
  let lift = Codec.read_float s in
  let needs_interpolation = Codec.read_bool s in
  { check; template_id; support; confidence; lift; needs_interpolation }

let list_artifact =
  {
    Zodiac_util.Stage.write = (fun b cs -> Codec.write_list write b cs);
    read = Codec.read_list read;
  }

let describe c =
  Printf.sprintf "%s [%s sup=%d conf=%.2f lift=%.2f%s]"
    (Spec_printer.to_string c.check)
    c.template_id c.support c.confidence c.lift
    (if c.needs_interpolation then " interp" else "")
