(** The association-rule mining engine (§3.3).

    One counting pass per template family walks the (default-
    materialized) corpus and instantiates every witnessed check with
    its association statistics:

    - {e support}: number of instances satisfying the condition;
    - {e confidence}: P(statement | condition);
    - {e lift}: confidence / P(statement), where the statement's prior
      is estimated from the KB's global value distributions.

    With [use_kb = false] the intra-resource families run without the
    KB's slot restrictions (any scalar value may appear on the right
    of an [==], any attribute in a presence test) — the ablation of
    Figure 7a. *)

type config = {
  use_kb : bool;
  min_support : int;  (** candidates below this support are not emitted *)
}

val default_config : config

val materialize :
  provider:Zodiac_provider.Provider.t ->
  ?jobs:int ->
  Zodiac_iac.Program.t list ->
  Zodiac_iac.Program.t list
(** Apply provider defaults to every resource. Mining always runs on
    materialized programs; build the KB from the same materialized
    corpus so that statement priors line up with observation (a
    default-valued attribute then has prior ~1 and its artifacts are
    removed by the lift filter). *)

val mine :
  provider:Zodiac_provider.Provider.t ->
  ?config:config ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  ?jobs:int ->
  ?tables:Zodiac_util.Cache.t * string ->
  Zodiac_kb.Kb.t ->
  Zodiac_iac.Program.t list ->
  Candidate.t list
(** Run every template family over the corpus; candidates are
    deduplicated, keeping the highest-support instance, and returned in
    the canonical (support desc, cid) order. Counting shards across up
    to [jobs] domains (default: recommended domain count); the result
    is identical for every [jobs] value.

    [tables] is [(cache, corpus_key)]: when given, the intra and
    indexed counting tables are loaded from / stored into the cache
    under a key derived from [corpus_key] (which must identify the
    materialized corpus, including its size) — re-mining the same
    corpus under a different [min_support] then skips the counting
    passes entirely. The inter-family tables depend on KB-derived
    reserved names and are only cached one level up, as part of the
    mined candidate set.

    [telemetry] (default {!Zodiac_util.Telemetry.null}) receives
    [miner.table_hits]/[miner.table_misses] counters, one per counting
    table family probed through [tables]. *)

(** {2 The tables monoid}

    The streamed counterpart of {!mine}: a {!tables} value bundles
    every counting family's tables as one mergeable unit, so a shard
    stream can count each shard independently ({!count_tables}), fold
    the per-shard values in shard order ({!merge_tables}), checkpoint
    them through the {!Zodiac_util.Cache} codec pair
    ({!write_tables}/{!read_tables}) and emit candidates once from the
    final merged value ({!emit_tables}). Every merge is an exact monoid
    over contiguous groupings — addition, (min, max, sum) or
    (max, sum) — so for any shard size (and any mix of resumed and
    rebuilt shards) [emit_tables config kb (fold of count_tables)]
    equals [mine ~config kb corpus]. *)

type tables
(** Intra + indexed + inter counting tables, merged by mutation. *)

val count_tables :
  provider:Zodiac_provider.Provider.t ->
  ?jobs:int ->
  config ->
  Zodiac_kb.Kb.t ->
  Zodiac_iac.Program.t list ->
  tables
(** Count one shard of {e materialized} programs. [kb] must be the
    finalized KB of the {e whole} corpus (the inter family derives its
    reserved names from it), so a stream runs its KB fold to completion
    before the first [count_tables] call. Within the shard, counting
    shards again across up to [jobs] domains. *)

val merge_tables : tables -> tables -> tables
(** [merge_tables dst src] folds [src] into [dst] (mutating [dst]) and
    returns [dst]; [src] is unchanged. *)

val write_tables : Zodiac_util.Codec.sink -> tables -> unit

val read_tables : Zodiac_util.Codec.src -> tables
(** Codec pair for shard checkpoints. Rows are written in canonical
    key order, so equal tables encode to equal bytes regardless of
    merge history. [read_tables] may raise
    {!Zodiac_util.Codec.Corrupt}. *)

val emit_tables : config -> Zodiac_kb.Kb.t -> tables -> Candidate.t list
(** Emit candidates from final merged tables — a pure function of
    (config, KB, tables): [emit_tables config kb (count_tables config
    kb corpus)] is exactly [mine ~config kb corpus] on a materialized
    corpus, including dedup and canonical order. *)

val mine_intra :
  provider:Zodiac_provider.Provider.t ->
  ?config:config ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  ?jobs:int ->
  ?tables:Zodiac_util.Cache.t * string ->
  Zodiac_kb.Kb.t ->
  Zodiac_iac.Program.t list ->
  Candidate.t list
(** Only the intra-resource families (used by the Figure 7a ablation,
    which plots per-type intra candidate counts with and without the
    KB). *)

val intra_counts_by_type :
  provider:Zodiac_provider.Provider.t ->
  ?jobs:int ->
  use_kb:bool ->
  Zodiac_kb.Kb.t ->
  Zodiac_iac.Program.t list ->
  (string * int * int) list
(** Per resource type: (type, attribute count, mined intra
    candidates). *)
