module Check = Zodiac_spec.Check
module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph
module Provider = Zodiac_provider.Provider
module Prng = Zodiac_util.Prng
module Candidate = Zodiac_mining.Candidate

type t = {
  provider : Provider.t;
  rng : Prng.t;
  error_rate : float;
  mutable queries : int;
}

let create ~provider ?(error_rate = 0.05) seed =
  { provider; rng = Prng.create seed; error_rate; queries = 0 }

type verdict = Refined of Check.t | Unsupported

(* ---- the "documentation" ------------------------------------------- *)

(* The constrained quantity decomposed from a mined numeric candidate.
   [Deg] is a degree bound towards a peer type; [Num] a numeric
   attribute bound. The documented-limit table itself is provider
   knowledge ([Provider.documented_limit]). *)
type quantity = Provider.quantity = Deg of [ `In | `Out ] * string | Num of string

let decompose (check : Check.t) =
  match check.Check.bindings with
  | [ { Check.btype; _ } ] -> (
      let cond =
        match check.Check.cond with
        | Check.Cmp (Check.Eq, Check.Attr { Check.attr; _ }, Check.Const v) ->
            Some (Check.strip_indices attr, v)
        | _ -> None
      in
      match check.Check.stmt with
      | Check.Cmp (((Check.Le | Check.Ge) as op), term, Check.Const (Value.Int bound))
        ->
          let quantity =
            match term with
            | Check.Indeg (_, Graph.Type tau) -> Some (Deg (`In, tau))
            | Check.Outdeg (_, Graph.Type tau) -> Some (Deg (`Out, tau))
            | Check.Attr { Check.attr; _ } -> Some (Num (Check.strip_indices attr))
            | _ -> None
          in
          Option.map (fun q -> (btype, cond, q, op, bound)) quantity
      | _ -> None)
  | _ -> None

let replace_bound (check : Check.t) bound =
  let stmt =
    match check.Check.stmt with
    | Check.Cmp (op, term, Check.Const (Value.Int _)) ->
        Check.Cmp (op, term, Check.Const (Value.Int bound))
    | stmt -> stmt
  in
  Check.make ~source:Check.Llm_interpolated check.Check.bindings check.Check.cond stmt

let interpolate t (candidate : Candidate.t) =
  t.queries <- t.queries + 1;
  let check = candidate.Candidate.check in
  match decompose check with
  | None -> Unsupported
  | Some (subject, cond, quantity, op, witnessed) -> (
      let hallucinate = Prng.chance t.rng t.error_rate in
      match t.provider.Provider.documented_limit ~subject ~cond ~quantity ~op with
      | Some bound ->
          let bound =
            if hallucinate then max 1 (bound + if Prng.bool t.rng then 1 else -1)
            else bound
          in
          Refined (replace_bound check bound)
      | None ->
          if hallucinate then Refined (replace_bound check witnessed)
          else Unsupported)

(* Plausibility assessment (§5.3): a structural judgement of whether a
   mined check "sounds like" a real cloud constraint. Only used to
   score the statistical filters, never to validate. *)
let rec plausible_expr markers = function
  | Check.Func ((Check.Overlap | Check.Contain), _, _) -> true
  | Check.Func (Check.Length, _, _) -> false
  | Check.Not e -> plausible_expr markers e
  | Check.And es -> List.exists (plausible_expr markers) es
  | Check.Cmp (_, Check.Attr { Check.attr = a1; _ }, Check.Attr { Check.attr = a2; _ })
    ->
      String.equal a1 a2 (* same-attribute agreement, e.g. locations *)
  | Check.Cmp (_, t1, t2) -> term_plausible markers t1 || term_plausible markers t2
  | Check.Conn _ | Check.Path _ | Check.Coconn _ | Check.Copath _ -> false

and term_plausible markers = function
  | Check.Indeg _ | Check.Outdeg _ -> true
  | Check.Const (Value.Str s) -> List.mem s markers
  | Check.Const _ | Check.Attr _ -> false

let assess t (candidate : Candidate.t) =
  t.queries <- t.queries + 1;
  let check = candidate.Candidate.check in
  let markers = t.provider.Provider.plausible_markers in
  let structural =
    plausible_expr markers check.Check.stmt
    || (plausible_expr markers check.Check.cond
       &&
       (* with a marker in the condition, a constant-valued statement
          reads like a sku restriction *)
       match check.Check.stmt with
       | Check.Cmp (_, _, Check.Const (Value.Str _)) -> true
       | _ -> false)
  in
  let documented = match decompose check with
    | Some (subject, cond, quantity, op, _) ->
        t.provider.Provider.documented_limit ~subject ~cond ~quantity ~op <> None
    | None -> false
  in
  let verdict = structural || documented in
  if Prng.chance t.rng t.error_rate then not verdict else verdict

let queries_made t = t.queries
