(** The simulated LLM used for interpolation and (optionally)
    plausibility assessment.

    The paper queries GPT-4 with few-shot prompts whose answers are
    grounded in Azure documentation pages (sku tables). This offline
    substitute answers the same structured queries from the
    documentation tables in {!Zodiac_azure.Skus} plus a small list of
    documented service limits — with a configurable hallucination
    rate, so the pipeline has to tolerate wrong answers exactly as the
    paper's does (validation catches them). *)

type t

val create : provider:Zodiac_provider.Provider.t -> ?error_rate:float -> int -> t
(** [create ~provider seed] builds an oracle answering from
    [provider]'s documentation tables; [error_rate] (default 0.05) is
    the probability an answer is hallucinated (perturbed bound or
    wrong verdict). *)

type verdict =
  | Refined of Zodiac_spec.Check.t
      (** documented limit found; the candidate's constant is replaced
          by the documented value *)
  | Unsupported
      (** no documented limit — the candidate is discarded *)

val interpolate : t -> Zodiac_mining.Candidate.t -> verdict
(** Answer an interpolation query for a quantitative candidate. *)

val assess : t -> Zodiac_mining.Candidate.t -> bool
(** The §5.3 plausibility assessment: does the oracle believe the
    check is a true constraint? Used only to {e evaluate} statistical
    filtering, never to decide validity. *)

val queries_made : t -> int
(** Number of oracle calls so far (cost accounting). *)
