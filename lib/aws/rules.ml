(** The AWS hidden ground-truth rule set. Rule ids carry the [AWS-]
    prefix so SARIF rule ids are provider-distinguishable. As on Azure,
    list order is load-bearing: the simulator reports the first
    violating rule in phase order. *)

module Check = Zodiac_spec.Check
module Provider = Zodiac_provider.Provider

type phase = Provider.phase = Plugin | Pre_sync | Create | Polling | Post_sync

type t = Provider.rule = {
  rule_id : string;
  check : Check.t;
  phase : phase;
  message : string;
}

let rule = Provider.rule

(* ---------------- hand-authored rules ------------------------------ *)

let authored () =
  [
    (* Region consistency across connected resources. *)
    rule "AWS-LOC-SUBNET-VPC" Create "Subnet must be in its VPC's region"
      "let s:SUBNET, v:VPC in conn(s.vpc_id -> v.id) => s.location == v.location";
    rule "AWS-LOC-IGW-VPC" Create "Internet gateway must be in its VPC's region"
      "let i:IGW, v:VPC in conn(i.vpc_id -> v.id) => i.location == v.location";
    rule "AWS-LOC-RT-VPC" Create "Route table must be in its VPC's region"
      "let r:RT, v:VPC in conn(r.vpc_id -> v.id) => r.location == v.location";
    rule "AWS-LOC-SG-VPC" Create "Security group must be in its VPC's region"
      "let g:SG, v:VPC in conn(g.vpc_id -> v.id) => g.location == v.location";
    rule "AWS-LOC-NATGW-SUBNET" Create "NAT gateway must be in its subnet's region"
      "let n:NATGW, s:SUBNET in conn(n.subnet_id -> s.id) => n.location == s.location";
    rule "AWS-LOC-ENI-SUBNET" Create
      "Network interface must be in its subnet's region"
      "let e:ENI, s:SUBNET in conn(e.subnet_id -> s.id) => e.location == s.location";
    rule "AWS-LOC-INSTANCE-SUBNET" Create "Instance must be in its subnet's region"
      "let i:INSTANCE, s:SUBNET in conn(i.subnet_id -> s.id) => i.location == s.location";
    rule "AWS-LOC-INSTANCE-VPC" Create "Instance must be in its VPC's region"
      "let i:INSTANCE, v:VPC in path(i -> v) => i.location == v.location";
    rule "AWS-LOC-LB-SUBNET" Create "Load balancer must be in its subnets' region"
      "let l:LB, s:SUBNET in conn(l.subnet_ids -> s.id) => l.location == s.location";
    rule "AWS-LOC-DB-SUBNETGRP" Create
      "RDS instance must be in its subnet group's region"
      "let d:DB, g:DBSUBNETGRP in conn(d.db_subnet_group_name -> g.name) => d.location == g.location";
    rule "AWS-LOC-ATTACH" Create "Instance and attached volume must share a region"
      "let i:INSTANCE, v:VOLUME, a:ATTACH in coconn(a.instance_id -> i.id, a.volume_id -> v.id) => i.location == v.location";
    (* CIDR discipline. *)
    rule "AWS-SUBNET-IN-VPC" Create
      "Subnet CIDR must be contained in the VPC CIDR block"
      "let s:SUBNET, v:VPC in conn(s.vpc_id -> v.id) => contain(v.cidr_block, s.cidr_block)";
    rule "AWS-SUBNET-OVERLAP" Create
      "Subnets of the same VPC cannot have overlapping CIDRs"
      "let s1:SUBNET, s2:SUBNET, v:VPC in coconn(s1.vpc_id -> v.id, s2.vpc_id -> v.id) => !overlap(s1.cidr_block, s2.cidr_block)";
    (* Topology cardinality. *)
    rule "AWS-IGW-PER-VPC" Create "A VPC can have at most one internet gateway"
      "let i:IGW, v:VPC in conn(i.vpc_id -> v.id) => outdegree(v, IGW) == 1";
    rule "AWS-RTASSOC-UNIQUE" Create
      "A subnet can be associated with at most one route table"
      "let a:RTASSOC, s:SUBNET in conn(a.subnet_id -> s.id) => outdegree(s, RTASSOC) == 1";
    (* Routing structure. *)
    rule "AWS-ROUTE-TARGET" Plugin
      "A route needs exactly one target (internet gateway or NAT gateway)"
      "let r:ROUTE in r.gateway_id != null => r.nat_gateway_id == null";
    rule "AWS-ROUTE-NAT-TARGET" Plugin
      "A route needs a target (internet gateway or NAT gateway)"
      "let r:ROUTE in r.nat_gateway_id == null => r.gateway_id != null";
    rule "AWS-NATGW-EIP" Create "A public NAT gateway requires an Elastic IP"
      "let n:NATGW in n.connectivity_type == 'public' => n.allocation_id != null";
    rule "AWS-NATGW-PRIVATE-EIP" Plugin
      "A private NAT gateway cannot carry an Elastic IP"
      "let n:NATGW in n.connectivity_type == 'private' => n.allocation_id == null";
    rule "AWS-EIP-DOMAIN" Plugin "NAT gateway Elastic IPs must be VPC-domain"
      "let n:NATGW, e:EIP in conn(n.allocation_id -> e.id) => e.domain == 'vpc'";
    (* Security groups. *)
    rule "AWS-SG-PORT-ORDER" Plugin
      "Security group rule from_port cannot exceed to_port"
      "let g:SG in g.rule[i].from_port != null && g.rule[i].to_port != null => g.rule[i].from_port <= g.rule[i].to_port";
    rule "AWS-SG-SOURCE" Plugin
      "A security group rule cannot name both a CIDR and a source group"
      "let g:SG in g.rule[i].cidr != null => g.rule[i].source_sg_id == null";
    rule "AWS-SG-SAME-VPC-ENI" Create
      "Network interface security groups must belong to the interface's VPC"
      "let e:ENI, g:SG, s:SUBNET in conn(e.sg_ids -> g.id) && conn(e.subnet_id -> s.id) => g.vpc_id == s.vpc_id";
    rule "AWS-SG-SAME-VPC-INSTANCE" Create
      "Instance security groups must belong to the instance's VPC"
      "let i:INSTANCE, g:SG, s:SUBNET in conn(i.sg_ids -> g.id) && conn(i.subnet_id -> s.id) => g.vpc_id == s.vpc_id";
    (* EC2 structure. *)
    rule "AWS-INSTANCE-NET" Plugin
      "An instance is placed in a subnet or on pre-built interfaces"
      "let i:INSTANCE in i.subnet_id == null => i.eni_ids != null";
    rule "AWS-INSTANCE-ENI-SUBNET" Create
      "Instance network interfaces must live in the instance's subnet VPC"
      "let i:INSTANCE, e:ENI in conn(i.eni_ids -> e.id) => i.location == e.location";
    rule "AWS-ATTACH-AZ" Create
      "A volume attaches only to an instance in its availability zone"
      "let i:INSTANCE, v:VOLUME, a:ATTACH in coconn(a.instance_id -> i.id, a.volume_id -> v.id) && i.availability_zone != null => i.availability_zone == v.availability_zone";
    rule "AWS-VOLUME-IOPS" Plugin "Provisioned-IOPS volumes must declare iops"
      "let v:VOLUME in v.type == 'io1' => v.iops != null";
    rule "AWS-VOLUME-IOPS2" Plugin "Provisioned-IOPS volumes must declare iops"
      "let v:VOLUME in v.type == 'io2' => v.iops != null";
    rule "AWS-VOLUME-GP2-IOPS" Plugin
      "gp2 volumes cannot declare provisioned iops"
      "let v:VOLUME in v.type == 'gp2' => v.iops == null";
    rule "AWS-VOLUME-THROUGHPUT" Plugin "Only gp3 volumes declare throughput"
      "let v:VOLUME in v.type == 'gp2' => v.throughput == null";
    (* S3. *)
    rule "AWS-BUCKET-WEBSITE-ACL" Create
      "A bucket website endpoint requires a public-read ACL"
      "let b:BUCKET in b.website != null => b.acl == 'public-read'";
    rule "AWS-BUCKET-KMS-KEY" Plugin "aws:kms bucket encryption requires a key"
      "let b:BUCKET in b.server_side_encryption.sse_algorithm == 'aws:kms' => b.server_side_encryption.kms_key_id != null";
    (* IAM. *)
    rule "AWS-ROLE-SESSION-MAX" Plugin
      "Role max session duration is at most 12 hours"
      "let r:IAM_ROLE in r.max_session_duration != null => r.max_session_duration <= 43200";
    rule "AWS-ROLE-SESSION-MIN" Plugin
      "Role max session duration is at least one hour"
      "let r:IAM_ROLE in r.max_session_duration != null => r.max_session_duration >= 3600";
    (* RDS. *)
    rule "AWS-DB-SUBNETS" Create "An RDS subnet group spans at least two subnets"
      "let g:DBSUBNETGRP in g.subnet_ids != null => indegree(g, SUBNET) >= 2";
    rule "AWS-DB-STORAGE-MIN" Plugin "RDS allocated storage is at least 20 GiB"
      "let d:DB in d.allocated_storage != null => d.allocated_storage >= 20";
    rule "AWS-DB-STORAGE-MAX" Plugin "RDS allocated storage is at most 65536 GiB"
      "let d:DB in d.allocated_storage != null => d.allocated_storage <= 65536";
    rule "AWS-DB-BACKUP-MAX" Plugin "RDS backup retention is at most 35 days"
      "let d:DB in d.backup_retention_period != null => d.backup_retention_period <= 35";
    rule "AWS-DB-BACKUP-MIN" Plugin "RDS backup retention cannot be negative"
      "let d:DB in d.backup_retention_period != null => d.backup_retention_period >= 0";
    (* Load balancers. *)
    rule "AWS-LB-SUBNETS" Create
      "An application load balancer spans at least two subnets"
      "let l:LB in l.lb_type == 'application' => indegree(l, SUBNET) >= 2";
    rule "AWS-LB-NLB-SG" Plugin "Network load balancers carry no security groups"
      "let l:LB in l.lb_type == 'network' => l.sg_ids == null";
    rule "AWS-LB-TIMEOUT-MAX" Plugin "Idle timeout is at most 4000 seconds"
      "let l:LB in l.idle_timeout != null => l.idle_timeout <= 4000";
    rule "AWS-LB-TIMEOUT-MIN" Plugin "Idle timeout is at least one second"
      "let l:LB in l.idle_timeout != null => l.idle_timeout >= 1";
  ]

(* ---------------- documentation-derived rules ----------------------- *)

let instance_type_rules () =
  List.concat_map
    (fun (it : Instances.instance_type) ->
      [
        rule
          (Printf.sprintf "AWS-ENI-LIMIT-%s" it.Instances.it_name)
          Polling
          (Printf.sprintf "%s instances support at most %d network interfaces"
             it.Instances.it_name it.Instances.max_enis)
          (Printf.sprintf
             "let i:INSTANCE in i.instance_type == '%s' => indegree(i, ENI) <= %d"
             it.Instances.it_name it.Instances.max_enis);
        rule
          (Printf.sprintf "AWS-EBS-LIMIT-%s" it.Instances.it_name)
          Polling
          (Printf.sprintf "%s instances support at most %d EBS attachments"
             it.Instances.it_name it.Instances.max_ebs)
          (Printf.sprintf
             "let i:INSTANCE in i.instance_type == '%s' => outdegree(i, ATTACH) <= %d"
             it.Instances.it_name it.Instances.max_ebs);
      ]
      @
      if it.Instances.ebs_optimized then []
      else
        [
          rule
            (Printf.sprintf "AWS-EBSOPT-%s" it.Instances.it_name)
            Plugin
            (Printf.sprintf "%s instances cannot be EBS-optimized"
               it.Instances.it_name)
            (Printf.sprintf
               "let i:INSTANCE in i.instance_type == '%s' => i.ebs_optimized == false"
               it.Instances.it_name);
        ])
    Instances.instance_types

let db_class_rules () =
  List.filter_map
    (fun (c : Instances.db_class) ->
      if c.Instances.multi_az_capable then None
      else
        Some
          (rule
             (Printf.sprintf "AWS-DB-AZ-%s" c.Instances.db_name)
             Plugin
             (Printf.sprintf "%s does not support multi-AZ deployment"
                c.Instances.db_name)
             (Printf.sprintf
                "let d:DB in d.instance_class == '%s' => d.multi_az == false"
                c.Instances.db_name)))
    Instances.db_classes

let all_rules = ref None

let ground_truth () =
  match !all_rules with
  | Some rules -> rules
  | None ->
      let rules = authored () @ instance_type_rules () @ db_class_rules () in
      all_rules := Some rules;
      rules

let find rule_id =
  List.find_opt (fun r -> String.equal r.rule_id rule_id) (ground_truth ())

let count () = List.length (ground_truth ())
