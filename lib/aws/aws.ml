(** The AWS backend: one [Provider.t] value tying together the
    catalogue, region/instance-type knowledge, the hidden ground-truth
    rule set, deployment-phase semantics and corpus templates. *)

module Provider = Zodiac_provider.Provider
module Value = Zodiac_iac.Value
module Check = Zodiac_spec.Check

(* AWS names are unique per account within a type's namespace; nothing
   in the modelled catalogue scopes names under a parent resource. *)
let name_scope_attr (_ : string) : string option = None

(* Regional availability applies to the instance-class-bearing types. *)
let sku_location_attr = function
  | "INSTANCE" -> Some "instance_type"
  | "DB" -> Some "instance_class"
  | _ -> None

(* GPU and large-memory instance families are only rolled out to major
   regions; the table lists regions where a type is NOT offered. *)
let sku_restricted_regions =
  [
    ( "p3.2xlarge",
      [
        "us-west-1"; "ca-central-1"; "sa-east-1"; "eu-west-3"; "eu-north-1";
        "eu-south-1"; "ap-east-1"; "me-south-1"; "af-south-1";
      ] );
    ( "x1e.xlarge",
      [
        "us-east-2"; "us-west-1"; "ca-central-1"; "sa-east-1"; "eu-west-2";
        "eu-west-3"; "eu-north-1"; "eu-south-1"; "ap-south-1"; "ap-east-1";
        "me-south-1"; "af-south-1";
      ] );
    ("i3.large", [ "me-south-1"; "af-south-1"; "eu-south-1" ]);
  ]

(* Names and regions are immutable; structural network placement and
   storage identity force replacement. *)
let immutable_attrs rtype =
  [ "name"; "location" ]
  @
  match rtype with
  | "VPC" -> [ "cidr_block"; "instance_tenancy" ]
  | "SUBNET" -> [ "vpc_id"; "cidr_block"; "availability_zone" ]
  | "IGW" -> [ "vpc_id" ]
  | "EIP" -> [ "domain" ]
  | "NATGW" -> [ "subnet_id"; "connectivity_type" ]
  | "RT" -> [ "vpc_id" ]
  | "SG" -> [ "vpc_id" ]
  | "ENI" -> [ "subnet_id" ]
  | "INSTANCE" -> [ "ami"; "subnet_id"; "availability_zone" ]
  | "VOLUME" -> [ "availability_zone" ]
  | "DB" -> [ "engine"; "db_subnet_group_name" ]
  | "LB" -> [ "lb_type" ]
  | _ -> []

(* Documented service limits, looked up from the condition
   (type, attribute, value) and the constrained quantity — the oracle's
   "documentation". *)
let documented_limit ~subject ~cond ~(quantity : Provider.quantity) ~op =
  match (subject, cond, quantity, op) with
  | ( "INSTANCE",
      Some ("instance_type", Value.Str it),
      Provider.Deg (`In, "ENI"),
      Check.Le ) ->
      Option.map
        (fun (t : Instances.instance_type) -> t.Instances.max_enis)
        (Instances.find it)
  | ( "INSTANCE",
      Some ("instance_type", Value.Str it),
      Provider.Deg (`Out, "ATTACH"),
      Check.Le ) ->
      Option.map
        (fun (t : Instances.instance_type) -> t.Instances.max_ebs)
        (Instances.find it)
  | "DBSUBNETGRP", _, Provider.Deg (`In, "SUBNET"), Check.Ge -> Some 2
  | "LB", _, Provider.Deg (`In, "SUBNET"), Check.Ge -> Some 2
  | "IAM_ROLE", _, Provider.Num "max_session_duration", Check.Le -> Some 43200
  | "IAM_ROLE", _, Provider.Num "max_session_duration", Check.Ge -> Some 3600
  | "DB", _, Provider.Num "allocated_storage", Check.Ge -> Some 20
  | "DB", _, Provider.Num "allocated_storage", Check.Le -> Some 65536
  | "DB", _, Provider.Num "backup_retention_period", Check.Le -> Some 35
  | "DB", _, Provider.Num "backup_retention_period", Check.Ge -> Some 0
  | "LB", _, Provider.Num "idle_timeout", Check.Le -> Some 4000
  | "LB", _, Provider.Num "idle_timeout", Check.Ge -> Some 1
  | "SG", _, Provider.Num "rule.from_port", Check.Ge -> Some 0
  | "SG", _, Provider.Num "rule.from_port", Check.Le -> Some 65535
  | "SG", _, Provider.Num "rule.to_port", Check.Ge -> Some 0
  | "SG", _, Provider.Num "rule.to_port", Check.Le -> Some 65535
  | "VOLUME", _, Provider.Num "size", Check.Ge -> Some 1
  | "VOLUME", _, Provider.Num "size", Check.Le -> Some 65536
  | "VOLUME", _, Provider.Num "iops", Check.Le -> Some 256000
  | "VOLUME", _, Provider.Num "throughput", Check.Le -> Some 1000
  | _ -> None

let plausible_markers =
  [
    "gp2"; "gp3"; "io1"; "io2"; "ingress"; "egress"; "application"; "network";
    "vpc"; "private"; "public-read";
  ]

let provider : Provider.t =
  {
    Provider.name = "aws";
    tf_prefix = "aws_";
    schemas = Catalog.schemas;
    find_schema = Catalog.find;
    type_names = Catalog.type_names;
    of_terraform = Catalog.of_terraform;
    to_terraform = Catalog.to_terraform;
    reserved_names = Catalog.reserved_names;
    regions = Regions.all;
    is_region = Regions.is_region;
    ground_truth = Rules.ground_truth;
    name_scope_attr;
    sku_location_attr;
    sku_restricted_regions;
    immutable_attrs;
    documented_limit;
    plausible_markers;
    scenarios = Corpus.scenarios;
    injectors = Corpus.injectors;
    add_unattended = Corpus.add_unattended;
  }
