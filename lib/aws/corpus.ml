(** AWS corpus scenario templates, violation injectors and the
    unattended-resource decorator. Shapes mirror real Terraform AWS
    stacks: public web tiers behind an IGW, private tiers behind a NAT
    gateway, S3 + IAM pipelines, RDS data tiers, EBS-heavy compute
    fleets. Conforming-by-construction against [Rules.ground_truth];
    the injectors manufacture the violation tail mining needs. *)

module Prng = Zodiac_util.Prng
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
open Zodiac_provider.Provider.Build

let common_instance_type ctx =
  Prng.weighted ctx.rng
    [ (6, "t3.micro"); (5, "t3.small"); (4, "t3.medium"); (3, "m5.large");
      (2, "t3.large"); (2, "c5.large"); (2, "m5.xlarge"); (1, "r5.large");
      (1, "c5.xlarge"); (1, "t2.micro"); (1, "t3.nano") ]

let pick_zone ctx =
  match Regions.zones ctx.region with
  | [] -> ctx.region ^ "a"
  | zs -> Prng.choose_list ctx.rng zs

let ami ctx =
  Printf.sprintf "ami-%08x" (Prng.int ctx.rng 0x3FFFFFFF)

(* ------------- resource builders ------------------------------------ *)

let make_vpc ctx index =
  let cidr = Printf.sprintf "10.%d.0.0/16" (index land 0xFF) in
  add ctx "VPC" (fresh ctx "vpc")
    [
      ("name", str (fresh ctx "vpc-net"));
      ("location", str ctx.region);
      ("cidr_block", str cidr);
    ]

let vpc_base vpc =
  match Resource.get vpc "cidr_block" with Value.Str s -> s | _ -> "10.0.0.0/16"

let subnet_cidr vpc index =
  match Zodiac_util.Cidr.of_string (vpc_base vpc) with
  | Some base -> (
      match Zodiac_util.Cidr.nth_subnet base 24 index with
      | Some c -> Zodiac_util.Cidr.to_string c
      | None -> "10.0.0.0/24")
  | None -> "10.0.0.0/24"

let make_subnet ?(public = false) ctx vpc index =
  let attrs =
    [
      ("name", str (fresh ctx "subnet-net"));
      ("location", str ctx.region);
      ("vpc_id", ref_to vpc "id");
      ("cidr_block", str (subnet_cidr vpc index));
      ("availability_zone", str (pick_zone ctx));
    ]
  in
  let attrs =
    if public then attrs @ [ ("map_public_ip_on_launch", bool true) ] else attrs
  in
  add ctx "SUBNET" (fresh ctx "subnet") attrs

let make_igw ctx vpc =
  add ctx "IGW" (fresh ctx "igw")
    [
      ("name", str (fresh ctx "igw-net"));
      ("location", str ctx.region);
      ("vpc_id", ref_to vpc "id");
    ]

let make_eip ctx =
  add ctx "EIP" (fresh ctx "eip")
    [ ("name", str (fresh ctx "eip-addr")); ("location", str ctx.region) ]

let make_natgw ctx subnet eip =
  add ctx "NATGW" (fresh ctx "nat")
    [
      ("name", str (fresh ctx "nat-gw"));
      ("location", str ctx.region);
      ("subnet_id", ref_to subnet "id");
      ("allocation_id", ref_to eip "id");
    ]

let make_rt ctx vpc =
  add ctx "RT" (fresh ctx "rt")
    [
      ("name", str (fresh ctx "rt-tbl"));
      ("location", str ctx.region);
      ("vpc_id", ref_to vpc "id");
    ]

let make_route ?igw ?natgw ctx rt =
  let target =
    match (igw, natgw) with
    | Some i, _ -> [ ("gateway_id", ref_to i "id") ]
    | None, Some n -> [ ("nat_gateway_id", ref_to n "id") ]
    | None, None -> []
  in
  add ctx "ROUTE" (fresh ctx "route")
    ([
       ("name", str (fresh ctx "route-def"));
       ("rt_id", ref_to rt "id");
       ("destination_cidr_block", str "0.0.0.0/0");
     ]
    @ target)

let make_rtassoc ctx subnet rt =
  add ctx "RTASSOC" (fresh ctx "rta")
    [ ("subnet_id", ref_to subnet "id"); ("rt_id", ref_to rt "id") ]

let sg_rule ?(dir = "ingress") ?(protocol = "tcp") ?cidr ~from_port ~to_port () =
  let base =
    [
      ("dir", str dir);
      ("protocol", str protocol);
      ("from_port", int from_port);
      ("to_port", int to_port);
    ]
  in
  Value.Block
    (match cidr with Some c -> base @ [ ("cidr", str c) ] | None -> base)

let make_sg ?(web = false) ctx vpc =
  let rules =
    if web then
      [
        sg_rule ~from_port:443 ~to_port:443 ~cidr:"0.0.0.0/0" ();
        sg_rule ~from_port:80 ~to_port:80 ~cidr:"0.0.0.0/0" ();
        sg_rule ~dir:"egress" ~protocol:"-1" ~from_port:0 ~to_port:0
          ~cidr:"0.0.0.0/0" ();
      ]
    else
      [
        sg_rule ~from_port:22 ~to_port:22 ~cidr:(vpc_base vpc) ();
        sg_rule ~dir:"egress" ~protocol:"-1" ~from_port:0 ~to_port:0
          ~cidr:"0.0.0.0/0" ();
      ]
  in
  add ctx "SG" (fresh ctx "sg")
    [
      ("name", str (fresh ctx "sg-grp"));
      ("location", str ctx.region);
      ("vpc_id", ref_to vpc "id");
      ("rule", Value.List rules);
    ]

let make_instance ?instance_type ?subnet ?sgs ?zone ?profile ctx =
  let itype =
    match instance_type with Some t -> t | None -> common_instance_type ctx
  in
  let attrs =
    [
      ("name", str (fresh ctx "web-srv"));
      ("location", str ctx.region);
      ("instance_type", str itype);
      ("ami", str (ami ctx));
    ]
  in
  let attrs =
    match subnet with
    | Some s -> attrs @ [ ("subnet_id", ref_to s "id") ]
    | None -> attrs
  in
  let attrs =
    match sgs with
    | Some gs when gs <> [] ->
        attrs @ [ ("sg_ids", Value.List (List.map (fun g -> ref_to g "id") gs)) ]
    | _ -> attrs
  in
  let attrs =
    match zone with
    | Some z -> attrs @ [ ("availability_zone", str z) ]
    | None -> attrs
  in
  let attrs =
    match profile with
    | Some p -> attrs @ [ ("iam_instance_profile", ref_to p "name") ]
    | None -> attrs
  in
  add ctx "INSTANCE" (fresh ctx "instance") attrs

let make_volume ?zone ctx =
  let zone = match zone with Some z -> z | None -> pick_zone ctx in
  let vtype =
    Prng.weighted ctx.rng [ (5, "gp2"); (4, "gp3"); (1, "io1"); (1, "st1") ]
  in
  let attrs =
    [
      ("name", str (fresh ctx "data-vol"));
      ("location", str ctx.region);
      ("availability_zone", str zone);
      ("size", int (Prng.choose_list ctx.rng [ 8; 20; 50; 100; 200 ]));
      ("type", str vtype);
    ]
  in
  let attrs =
    if String.equal vtype "io1" then attrs @ [ ("iops", int 3000) ] else attrs
  in
  add ctx "VOLUME" (fresh ctx "volume") attrs

let make_attach ctx instance volume index =
  add ctx "ATTACH" (fresh ctx "attach")
    [
      ("device_name", str (Printf.sprintf "/dev/sd%c" (Char.chr (Char.code 'f' + index))));
      ("instance_id", ref_to instance "id");
      ("volume_id", ref_to volume "id");
    ]

let make_bucket ?(website = false) ctx =
  let attrs =
    [
      ("name", str (fresh ctx "bucket-data"));
      ("location", str ctx.region);
    ]
  in
  let attrs =
    if website then
      attrs
      @ [
          ("acl", str "public-read");
          ("website", Value.Block [ ("index_document", str "index.html") ]);
        ]
    else if Prng.chance ctx.rng 0.5 then
      attrs @ [ ("versioning", Value.Block [ ("enabled", bool true) ]) ]
    else attrs
  in
  add ctx "BUCKET" (fresh ctx "bucket") attrs

let assume_role_policy = "{\"Statement\":[{\"Action\":\"sts:AssumeRole\",\"Principal\":{\"Service\":\"ec2.amazonaws.com\"}}]}"

let make_role ctx =
  add ctx "IAM_ROLE" (fresh ctx "role")
    [
      ("name", str (fresh ctx "role-app"));
      ("assume_role_policy", str assume_role_policy);
    ]

let make_policy ctx bucket =
  let doc =
    Printf.sprintf
      "{\"Statement\":[{\"Action\":\"s3:GetObject\",\"Resource\":\"arn:aws:s3:::%s/*\"}]}"
      bucket
  in
  add ctx "IAM_POLICY" (fresh ctx "policy")
    [ ("name", str (fresh ctx "policy-app")); ("policy", str doc) ]

let make_iam_attach ctx role policy =
  add ctx "IAM_ATTACH" (fresh ctx "attach-pol")
    [ ("role", ref_to role "name"); ("policy_arn", ref_to policy "arn") ]

let make_profile ctx role =
  add ctx "INSTANCE_PROFILE" (fresh ctx "profile")
    [ ("name", str (fresh ctx "profile-app")); ("role", ref_to role "name") ]

(* ------------- scenarios --------------------------------------------- *)

(* A public web tier: IGW-routed subnets, a web security group, a few
   instances, sometimes an ALB across two subnets. *)
let web_tier ctx =
  let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
  let s1 = make_subnet ~public:true ctx vpc 0 in
  let s2 = make_subnet ~public:true ctx vpc 1 in
  let igw = make_igw ctx vpc in
  let rt = make_rt ctx vpc in
  ignore (make_route ~igw ctx rt);
  ignore (make_rtassoc ctx s1 rt);
  ignore (make_rtassoc ctx s2 rt);
  let sg = make_sg ~web:true ctx vpc in
  let n = 1 + Prng.int ctx.rng 3 in
  let instances =
    List.init n (fun i ->
        make_instance ~subnet:(if i mod 2 = 0 then s1 else s2) ~sgs:[ sg ] ctx)
  in
  ignore instances;
  if Prng.chance ctx.rng 0.5 then
    ignore
      (add ctx "LB" (fresh ctx "alb")
         [
           ("name", str (fresh ctx "alb-front"));
           ("location", str ctx.region);
           ("subnet_ids", Value.List [ ref_to s1 "id"; ref_to s2 "id" ]);
           ("sg_ids", Value.List [ ref_to sg "id" ]);
         ])

(* A private tier NATed out: NAT gateway in a public subnet, private
   subnets route through it. *)
let private_tier ctx =
  let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
  let public = make_subnet ~public:true ctx vpc 0 in
  let private1 = make_subnet ctx vpc 1 in
  let igw = make_igw ctx vpc in
  let public_rt = make_rt ctx vpc in
  ignore (make_route ~igw ctx public_rt);
  ignore (make_rtassoc ctx public public_rt);
  let eip = make_eip ctx in
  let nat = make_natgw ctx public eip in
  let private_rt = make_rt ctx vpc in
  ignore (make_route ~natgw:nat ctx private_rt);
  ignore (make_rtassoc ctx private1 private_rt);
  let sg = make_sg ctx vpc in
  let n = 1 + Prng.int ctx.rng 2 in
  ignore (List.init n (fun _ -> make_instance ~subnet:private1 ~sgs:[ sg ] ctx))

(* S3 + IAM: buckets, a reader role wired to an instance profile. *)
let storage_pipeline ctx =
  let b1 = make_bucket ctx in
  let bname =
    match Resource.get b1 "name" with Value.Str s -> s | _ -> "bucket"
  in
  if Prng.chance ctx.rng 0.4 then ignore (make_bucket ctx);
  if Prng.chance ctx.rng 0.15 then ignore (make_bucket ~website:true ctx);
  let role = make_role ctx in
  let policy = make_policy ctx bname in
  ignore (make_iam_attach ctx role policy);
  if Prng.chance ctx.rng 0.6 then begin
    let profile = make_profile ctx role in
    let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
    let subnet = make_subnet ctx vpc 0 in
    ignore (make_instance ~subnet ~profile ctx)
  end

(* An RDS data tier: subnet group over two AZ-spread subnets. *)
let data_tier ctx =
  let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
  let s1 = make_subnet ctx vpc 0 in
  let s2 = make_subnet ctx vpc 1 in
  let sg = make_sg ctx vpc in
  let grp =
    add ctx "DBSUBNETGRP" (fresh ctx "dbgrp")
      [
        ("name", str (fresh ctx "dbgrp-net"));
        ("location", str ctx.region);
        ("subnet_ids", Value.List [ ref_to s1 "id"; ref_to s2 "id" ]);
      ]
  in
  let cls =
    Prng.weighted ctx.rng
      [ (4, "db.t3.small"); (3, "db.t3.medium"); (2, "db.m5.large"); (1, "db.t3.micro") ]
  in
  let multi_az =
    (match Instances.find_db cls with
    | Some c -> c.Instances.multi_az_capable
    | None -> false)
    && Prng.chance ctx.rng 0.3
  in
  ignore
    (add ctx "DB" (fresh ctx "db")
       [
         ("name", str (fresh ctx "db-main"));
         ("location", str ctx.region);
         ("engine", str (Prng.choose_list ctx.rng [ "mysql"; "postgres"; "mariadb" ]));
         ("instance_class", str cls);
         ("allocated_storage", int (Prng.choose_list ctx.rng [ 20; 50; 100 ]));
         ("db_subnet_group_name", ref_to grp "name");
         ("sg_ids", Value.List [ ref_to sg "id" ]);
         ("multi_az", bool multi_az);
         ("backup_retention_period", int (Prng.choose_list ctx.rng [ 1; 7; 14; 35 ]));
       ]);
  if Prng.chance ctx.rng 0.5 then begin
    let app_subnet = make_subnet ctx vpc 2 in
    ignore (make_instance ~subnet:app_subnet ~sgs:[ sg ] ctx)
  end

(* EBS-heavy compute: instances with data volumes attached in-AZ. *)
let compute_fleet ctx =
  let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
  let subnet = make_subnet ctx vpc 0 in
  let sg = make_sg ctx vpc in
  let zone = pick_zone ctx in
  let n = 1 + Prng.int ctx.rng 2 in
  ignore
    (List.init n (fun _ ->
         let inst = make_instance ~subnet ~sgs:[ sg ] ~zone ctx in
         let disks = 1 + Prng.int ctx.rng 2 in
         List.init disks (fun i ->
             let vol = make_volume ~zone ctx in
             make_attach ctx inst vol i)))

(* Pure IAM stacks: roles, policies and attachments, no network. *)
let iam_stack ctx =
  let n = 1 + Prng.int ctx.rng 2 in
  ignore
    (List.init n (fun _ ->
         let role = make_role ctx in
         let policy = make_policy ctx (fresh ctx "bucket") in
         make_iam_attach ctx role policy))

(* A fleet with explicit network interfaces attached per instance. *)
let eni_fleet ctx =
  let vpc = make_vpc ctx (Prng.int ctx.rng 200) in
  let subnet = make_subnet ctx vpc 0 in
  let sg = make_sg ctx vpc in
  let n = 1 + Prng.int ctx.rng 2 in
  ignore
    (List.init n (fun _ ->
         let enis =
           List.init
             (1 + Prng.int ctx.rng 2)
             (fun _ ->
               add ctx "ENI" (fresh ctx "eni")
                 [
                   ("name", str (fresh ctx "eni-if"));
                   ("location", str ctx.region);
                   ("subnet_id", ref_to subnet "id");
                   ("sg_ids", Value.List [ ref_to sg "id" ]);
                 ])
         in
         add ctx "INSTANCE" (fresh ctx "instance")
           [
             ("name", str (fresh ctx "app-srv"));
             ("location", str ctx.region);
             ( "instance_type",
               str
                 (Prng.choose_list ctx.rng
                    [ "m5.large"; "m5.xlarge"; "c5.xlarge"; "r5.large" ]) );
             ("ami", str (ami ctx));
             ("subnet_id", ref_to subnet "id");
             ("eni_ids", Value.List (List.map (fun e -> ref_to e "id") enis));
           ]))

let scenarios =
  [
    (8, ("web_tier", web_tier));
    (5, ("private_tier", private_tier));
    (6, ("storage_pipeline", storage_pipeline));
    (5, ("data_tier", data_tier));
    (5, ("compute_fleet", compute_fleet));
    (3, ("iam_stack", iam_stack));
    (3, ("eni_fleet", eni_fleet));
  ]

(* ------------- violation injection ----------------------------------- *)

let injectors :
    (string * (Prng.t -> Program.t -> Program.t option)) list =
  let pick_of_type rng prog rtype =
    match Program.by_type prog rtype with
    | [] -> None
    | rs -> Some (Prng.choose_list rng rs)
  in
  let other_region rng current =
    let candidates =
      List.filter (fun r -> not (String.equal r current)) Regions.all
    in
    Prng.choose_list rng candidates
  in
  let str s = Value.Str s in
  [
    ( "subnet-wrong-region",
      fun rng prog ->
        Option.map
          (fun subnet ->
            let current =
              match Resource.get subnet "location" with
              | Value.Str s -> s
              | _ -> "us-east-1"
            in
            Program.update prog (Resource.id subnet) (fun r ->
                Resource.set r "location" (str (other_region rng current))))
          (pick_of_type rng prog "SUBNET") );
    ( "subnet-out-of-range",
      fun _rng prog ->
        Option.map
          (fun subnet ->
            Program.update prog (Resource.id subnet) (fun r ->
                Resource.set r "cidr_block" (str "192.168.77.0/24")))
          (match Program.by_type prog "SUBNET" with [] -> None | s :: _ -> Some s) );
    ( "subnet-overlap",
      fun _rng prog ->
        match Program.by_type prog "SUBNET" with
        | s1 :: s2 :: _
          when Value.equal (Resource.get s1 "vpc_id") (Resource.get s2 "vpc_id") ->
            Some
              (Program.update prog (Resource.id s2) (fun r ->
                   Resource.set r "cidr_block" (Resource.get s1 "cidr_block")))
        | _ -> None );
    ( "second-igw",
      fun _rng prog ->
        match Program.by_type prog "IGW" with
        | igw :: _ ->
            let vpc_ref = Resource.get igw "vpc_id" in
            let dup =
              Resource.make "IGW" "igw99x"
                [
                  ("name", str "igw99x-extra");
                  ("location", Resource.get igw "location");
                  ("vpc_id", vpc_ref);
                ]
            in
            Some (Program.of_resources (Program.resources prog @ [ dup ]))
        | [] -> None );
    ( "route-both-targets",
      fun _rng prog ->
        match Program.by_type prog "ROUTE" with
        | route :: _ when not (Value.is_null (Resource.get route "gateway_id")) -> (
            match Program.by_type prog "NATGW" with
            | nat :: _ ->
                Some
                  (Program.update prog (Resource.id route) (fun r ->
                       Resource.set r "nat_gateway_id"
                         (Value.reference "NATGW" nat.Resource.rname "id")))
            | [] -> None)
        | _ -> None );
    ( "sg-port-disorder",
      fun _rng prog ->
        Option.map
          (fun sg ->
            Program.update prog (Resource.id sg) (fun r ->
                match Resource.get r "rule" with
                | Value.List (Value.Block fields :: rest) ->
                    let swapped =
                      List.map
                        (fun (k, v) ->
                          match k with
                          | "from_port" -> (k, Value.Int 443)
                          | "to_port" -> (k, Value.Int 80)
                          | _ -> (k, v))
                        fields
                    in
                    Resource.set r "rule" (Value.List (Value.Block swapped :: rest))
                | _ -> r))
          (pick_of_type _rng prog "SG") );
    ( "volume-gp2-iops",
      fun rng prog ->
        Option.map
          (fun vol ->
            Program.update prog (Resource.id vol) (fun r ->
                Resource.set (Resource.set r "type" (str "gp2")) "iops"
                  (Value.Int 3000)))
          (pick_of_type rng prog "VOLUME") );
    ( "bucket-private-website",
      fun rng prog ->
        Option.map
          (fun bucket ->
            Program.update prog (Resource.id bucket) (fun r ->
                Resource.set
                  (Resource.set r "website"
                     (Value.Block [ ("index_document", str "index.html") ]))
                  "acl" (str "private")))
          (pick_of_type rng prog "BUCKET") );
    ( "db-backup-over",
      fun rng prog ->
        Option.map
          (fun db ->
            Program.update prog (Resource.id db) (fun r ->
                Resource.set r "backup_retention_period" (Value.Int 45)))
          (pick_of_type rng prog "DB") );
    ( "role-session-over",
      fun rng prog ->
        Option.map
          (fun role ->
            Program.update prog (Resource.id role) (fun r ->
                Resource.set r "max_session_duration" (Value.Int 90000)))
          (pick_of_type rng prog "IAM_ROLE") );
    ( "attach-cross-az",
      fun _rng prog ->
        match (Program.by_type prog "ATTACH", Program.by_type prog "VOLUME") with
        | _ :: _, vol :: _ ->
            Some
              (Program.update prog (Resource.id vol) (fun r ->
                   let az =
                     match Resource.get r "availability_zone" with
                     | Value.Str s -> s
                     | _ -> "us-east-1a"
                   in
                   Resource.set r "availability_zone" (str (az ^ "x"))))
        | _ -> None );
    ( "nat-missing-eip",
      fun rng prog ->
        Option.map
          (fun nat ->
            Program.update prog (Resource.id nat) (fun r ->
                Resource.remove_attr r "allocation_id"))
          (pick_of_type rng prog "NATGW") );
  ]

(* ------------- unattended resources ---------------------------------- *)

let add_unattended ctx =
  let attended =
    List.filter
      (fun r -> not (String.equal r.Resource.rtype "SUBNET"))
      ctx.resources
  in
  let pick () = Prng.choose_list ctx.rng attended in
  if attended <> [] then begin
    if Prng.chance ctx.rng 0.3 then begin
      let target = pick () in
      ignore
        (add ctx "CW_ALARM" (fresh ctx "alarm")
           [
             ("name", str (fresh ctx "cpu-high"));
             ("target_resource_id", ref_to target "id");
             ("metric_name", str "CPUUtilization");
             ("threshold", int 80);
           ])
    end;
    if Prng.chance ctx.rng 0.2 then begin
      let target = pick () in
      ignore
        (add ctx "SNS_TOPIC" (fresh ctx "topic")
           [
             ("name", str (fresh ctx "alerts"));
             ("source_id", ref_to target "id");
           ])
    end;
    if Prng.chance ctx.rng 0.2 then begin
      let target = pick () in
      ignore
        (add ctx "SSM_ASSOC" (fresh ctx "ssm")
           [
             ("name", str (fresh ctx "patch-baseline"));
             ("target_id", ref_to target "id");
             ("schedule", str "rate(7 days)");
           ])
    end
  end
