(* EC2 instance type documentation table: the AWS analogue of
   [Zodiac_azure.Skus] — network-interface and EBS-attachment maxima
   drive the oracle's documented limits. *)
type instance_type = {
  it_name : string;
  max_enis : int;
  max_ebs : int;
  vcpus : int;
  ebs_optimized : bool;
}

let instance_types =
  [
    { it_name = "t3.nano"; max_enis = 2; max_ebs = 4; vcpus = 2; ebs_optimized = false };
    { it_name = "t3.micro"; max_enis = 2; max_ebs = 4; vcpus = 2; ebs_optimized = false };
    { it_name = "t3.small"; max_enis = 3; max_ebs = 6; vcpus = 2; ebs_optimized = false };
    { it_name = "t3.medium"; max_enis = 3; max_ebs = 6; vcpus = 2; ebs_optimized = false };
    { it_name = "t3.large"; max_enis = 3; max_ebs = 8; vcpus = 2; ebs_optimized = true };
    { it_name = "m5.large"; max_enis = 3; max_ebs = 8; vcpus = 2; ebs_optimized = true };
    { it_name = "m5.xlarge"; max_enis = 4; max_ebs = 10; vcpus = 4; ebs_optimized = true };
    { it_name = "m5.2xlarge"; max_enis = 4; max_ebs = 12; vcpus = 8; ebs_optimized = true };
    { it_name = "m5.4xlarge"; max_enis = 8; max_ebs = 16; vcpus = 16; ebs_optimized = true };
    { it_name = "c5.large"; max_enis = 3; max_ebs = 8; vcpus = 2; ebs_optimized = true };
    { it_name = "c5.xlarge"; max_enis = 4; max_ebs = 10; vcpus = 4; ebs_optimized = true };
    { it_name = "c5.2xlarge"; max_enis = 4; max_ebs = 12; vcpus = 8; ebs_optimized = true };
    { it_name = "r5.large"; max_enis = 3; max_ebs = 8; vcpus = 2; ebs_optimized = true };
    { it_name = "r5.xlarge"; max_enis = 4; max_ebs = 10; vcpus = 4; ebs_optimized = true };
    { it_name = "r5.2xlarge"; max_enis = 4; max_ebs = 12; vcpus = 8; ebs_optimized = true };
    { it_name = "p3.2xlarge"; max_enis = 4; max_ebs = 12; vcpus = 8; ebs_optimized = true };
    { it_name = "x1e.xlarge"; max_enis = 3; max_ebs = 10; vcpus = 4; ebs_optimized = true };
    { it_name = "i3.large"; max_enis = 3; max_ebs = 8; vcpus = 2; ebs_optimized = true };
    { it_name = "t2.micro"; max_enis = 2; max_ebs = 4; vcpus = 1; ebs_optimized = false };
    { it_name = "t2.small"; max_enis = 3; max_ebs = 6; vcpus = 1; ebs_optimized = false };
  ]

let instance_type_names = List.map (fun t -> t.it_name) instance_types

let find name =
  List.find_opt (fun t -> String.equal t.it_name name) instance_types

type db_class = { db_name : string; db_vcpus : int; multi_az_capable : bool }

let db_classes =
  [
    { db_name = "db.t3.micro"; db_vcpus = 2; multi_az_capable = false };
    { db_name = "db.t3.small"; db_vcpus = 2; multi_az_capable = true };
    { db_name = "db.t3.medium"; db_vcpus = 2; multi_az_capable = true };
    { db_name = "db.m5.large"; db_vcpus = 2; multi_az_capable = true };
    { db_name = "db.m5.xlarge"; db_vcpus = 4; multi_az_capable = true };
    { db_name = "db.r5.large"; db_vcpus = 2; multi_az_capable = true };
  ]

let db_class_names = List.map (fun c -> c.db_name) db_classes

let find_db name = List.find_opt (fun c -> String.equal c.db_name name) db_classes
