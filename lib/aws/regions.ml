(* Region name, availability-zone count. AWS has no "paired region"
   notion; zone counts stand in for the rollout differences that make
   some instance families regional. *)
let table =
  [
    ("us-east-1", 6);
    ("us-east-2", 3);
    ("us-west-1", 2);
    ("us-west-2", 4);
    ("ca-central-1", 3);
    ("sa-east-1", 3);
    ("eu-west-1", 3);
    ("eu-west-2", 3);
    ("eu-west-3", 3);
    ("eu-central-1", 3);
    ("eu-north-1", 3);
    ("eu-south-1", 3);
    ("ap-southeast-1", 3);
    ("ap-southeast-2", 3);
    ("ap-northeast-1", 3);
    ("ap-northeast-2", 4);
    ("ap-south-1", 3);
    ("ap-east-1", 3);
    ("me-south-1", 3);
    ("af-south-1", 3);
  ]

let all = List.map fst table

let is_region name = List.mem_assoc name table

let zone_count name = List.assoc_opt name table

(* Zone suffixes actually used by the corpus: region ^ suffix. *)
let zones name =
  match zone_count name with
  | None -> []
  | Some n ->
      List.filteri (fun i _ -> i < n)
        [ "a"; "b"; "c"; "d"; "e"; "f" ]
      |> List.map (fun suffix -> name ^ suffix)
