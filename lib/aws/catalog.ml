(** The AWS resource catalogue: S3/EC2/IAM/VPC/security-group-shaped
    schemas with the [aws_*] Terraform name mapping. The shapes follow
    the Terraform AWS provider closely enough that the mining families
    (value, presence, CIDR containment, degree, connection) all have
    something to bite on, while staying far smaller than the Azure
    catalogue — breadth lives on the Azure side. *)

open Zodiac_iac.Schema
module Value = Zodiac_iac.Value

let req = Required
let computed = Computed
let a = attr_v
let str_default s = Value.Str s
let bool_default b = Value.Bool b
let int_default i = Value.Int i

(* Attributes shared by nearly every resource in this catalogue. In
   Terraform the region lives on the provider block; modelling it as a
   per-resource attribute (like the console's region picker) gives the
   location-agreement family the same shape as on Azure. *)
let name_attr = a ~req ~format:Name_format "name" T_string
let location_attr = a ~req ~format:Region "location" T_string
let id_attr = a ~req:computed ~format:Id_format "id" T_string
let arn_attr = a ~req:computed ~format:Id_format "arn" T_string
let tags_attr = a "tags" (T_block [])

let common = [ name_attr; location_attr; id_attr; arn_attr; tags_attr ]

let vpc =
  make ~description:"VPC" "VPC"
    (common
    @ [
        a ~req ~format:Cidr_format "cidr_block" T_string;
        a ~default:(bool_default true) "enable_dns_support" T_bool;
        a ~default:(bool_default false) "enable_dns_hostnames" T_bool;
        a ~default:(str_default "default")
          ~format:(Enum [ "default"; "dedicated" ])
          "instance_tenancy" T_string;
        a ~default:(bool_default false) "assign_generated_ipv6_cidr_block" T_bool;
      ])

let subnet =
  make ~description:"VPC subnet" "SUBNET"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "vpc_id" T_string;
        a ~req ~format:Cidr_format "cidr_block" T_string;
        a "availability_zone" T_string;
        a ~default:(bool_default false) "map_public_ip_on_launch" T_bool;
        a ~default:(bool_default false) "assign_ipv6_address_on_creation" T_bool;
      ])

let igw =
  make ~description:"Internet gateway" "IGW"
    (common @ [ a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "vpc_id" T_string ])

let eip =
  make ~description:"Elastic IP" "EIP"
    (common
    @ [
        a ~default:(str_default "vpc") ~format:(Enum [ "vpc"; "standard" ]) "domain"
          T_string;
        a ~req:computed "public_ip" T_string;
      ])

let natgw =
  make ~description:"NAT gateway" "NATGW"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
        a ~format:Id_format ~refs_to:[ ("EIP", "id") ] "allocation_id" T_string;
        a ~default:(str_default "public")
          ~format:(Enum [ "public"; "private" ])
          "connectivity_type" T_string;
      ])

let rt =
  make ~description:"Route table" "RT"
    (common @ [ a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "vpc_id" T_string ])

let route =
  make ~description:"Route" "ROUTE"
    [
      name_attr;
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("RT", "id") ] "rt_id" T_string;
      a ~req ~format:Cidr_format "destination_cidr_block" T_string;
      a ~format:Id_format ~refs_to:[ ("IGW", "id") ] "gateway_id" T_string;
      a ~format:Id_format ~refs_to:[ ("NATGW", "id") ] "nat_gateway_id" T_string;
    ]

let rtassoc =
  make ~description:"Route table association" "RTASSOC"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("RT", "id") ] "rt_id" T_string;
    ]

let sg =
  make ~description:"Security group" "SG"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "vpc_id" T_string;
        a "description" T_string;
        a "rule"
          (T_list
             (T_block
                [
                  a ~req ~format:(Enum [ "ingress"; "egress" ]) "dir" T_string;
                  a ~req
                    ~format:(Enum [ "tcp"; "udp"; "icmp"; "-1" ])
                    "protocol" T_string;
                  a ~format:Port_format "from_port" T_int;
                  a ~format:Port_format "to_port" T_int;
                  a ~format:Cidr_format "cidr" T_string;
                  a ~format:Id_format "source_sg_id" T_string;
                ]));
        a ~default:(bool_default false) "revoke_rules_on_delete" T_bool;
      ])

let eni =
  make ~description:"Elastic network interface" "ENI"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
        a ~format:Id_format ~refs_to:[ ("SG", "id") ] "sg_ids" (T_list T_string);
        a "private_ip" T_string;
        a ~default:(bool_default false) "source_dest_check_disabled" T_bool;
      ])

let instance =
  make ~description:"EC2 instance" "INSTANCE"
    (common
    @ [
        a ~req ~format:(Enum Instances.instance_type_names) "instance_type" T_string;
        a ~req "ami" T_string;
        a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
        a ~format:Id_format ~refs_to:[ ("ENI", "id") ] "eni_ids" (T_list T_string);
        a ~format:Id_format ~refs_to:[ ("SG", "id") ] "sg_ids" (T_list T_string);
        a "availability_zone" T_string;
        a "key_name" T_string;
        a ~default:(bool_default false) "associate_public_ip_address" T_bool;
        a ~default:(bool_default true) "source_dest_check" T_bool;
        a ~default:(bool_default false) "ebs_optimized" T_bool;
        a ~default:(bool_default false) "monitoring" T_bool;
        a "root_block_device"
          (T_block
             [
               a ~default:(str_default "gp2")
                 ~format:(Enum [ "gp2"; "gp3"; "io1"; "io2"; "standard" ])
                 "volume_type" T_string;
               a "volume_size" T_int;
               a ~default:(bool_default false) "encrypted" T_bool;
               a ~default:(bool_default true) "delete_on_termination" T_bool;
             ]);
        a ~format:Id_format ~refs_to:[ ("INSTANCE_PROFILE", "name") ]
          "iam_instance_profile" T_string;
        a ~default:(str_default "stop")
          ~format:(Enum [ "stop"; "terminate"; "hibernate" ])
          "instance_initiated_shutdown_behavior" T_string;
        a "user_data" T_string;
        a ~default:(str_default "on-demand")
          ~format:(Enum [ "on-demand"; "spot" ])
          "purchase_option" T_string;
        a ~req:computed "private_ip" T_string;
        a ~req:computed "public_ip" T_string;
      ])

let volume =
  make ~description:"EBS volume" "VOLUME"
    (common
    @ [
        a ~req "availability_zone" T_string;
        a ~req "size" T_int;
        a ~default:(str_default "gp2")
          ~format:(Enum [ "gp2"; "gp3"; "io1"; "io2"; "st1"; "sc1"; "standard" ])
          "type" T_string;
        a "iops" T_int;
        a "throughput" T_int;
        a ~default:(bool_default false) "encrypted" T_bool;
        a ~format:Id_format "kms_key_id" T_string;
      ])

let attach =
  make ~description:"EBS volume attachment" "ATTACH"
    [
      id_attr;
      a ~req "device_name" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("INSTANCE", "id") ] "instance_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("VOLUME", "id") ] "volume_id" T_string;
      a ~default:(bool_default false) "force_detach" T_bool;
    ]

let bucket =
  make ~description:"S3 bucket" "BUCKET"
    (common
    @ [
        a ~default:(str_default "private")
          ~format:
            (Enum [ "private"; "public-read"; "public-read-write"; "authenticated-read" ])
          "acl" T_string;
        a ~default:(bool_default false) "force_destroy" T_bool;
        a "versioning"
          (T_block [ a ~default:(bool_default false) "enabled" T_bool ]);
        a "server_side_encryption"
          (T_block
             [
               a ~default:(str_default "AES256")
                 ~format:(Enum [ "AES256"; "aws:kms" ])
                 "sse_algorithm" T_string;
               a ~format:Id_format "kms_key_id" T_string;
             ]);
        a "website"
          (T_block [ a ~req "index_document" T_string; a "error_document" T_string ]);
        a ~default:(bool_default true) "block_public_policy" T_bool;
      ])

let iam_role =
  make ~description:"IAM role" "IAM_ROLE"
    [
      name_attr;
      id_attr;
      arn_attr;
      tags_attr;
      a ~req "assume_role_policy" T_string;
      a ~default:(str_default "/") "path" T_string;
      a ~default:(int_default 3600) "max_session_duration" T_int;
      a "description" T_string;
    ]

let iam_policy =
  make ~description:"IAM policy" "IAM_POLICY"
    [
      name_attr;
      id_attr;
      arn_attr;
      tags_attr;
      a ~req "policy" T_string;
      a ~default:(str_default "/") "path" T_string;
      a "description" T_string;
    ]

let iam_attach =
  make ~description:"IAM role-policy attachment" "IAM_ATTACH"
    [
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("IAM_ROLE", "name") ] "role" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("IAM_POLICY", "arn") ] "policy_arn" T_string;
    ]

let instance_profile =
  make ~description:"IAM instance profile" "INSTANCE_PROFILE"
    [
      name_attr;
      id_attr;
      arn_attr;
      a ~req ~format:Name_format ~refs_to:[ ("IAM_ROLE", "name") ] "role" T_string;
      a ~default:(str_default "/") "path" T_string;
    ]

let dbsubnetgrp =
  make ~description:"RDS subnet group" "DBSUBNETGRP"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_ids"
          (T_list T_string);
        a "description" T_string;
      ])

let db =
  make ~description:"RDS instance" "DB"
    (common
    @ [
        a ~req ~format:(Enum [ "mysql"; "postgres"; "mariadb" ]) "engine" T_string;
        a "engine_version" T_string;
        a ~req ~format:(Enum Instances.db_class_names) "instance_class" T_string;
        a ~req "allocated_storage" T_int;
        a ~default:(str_default "gp2")
          ~format:(Enum [ "gp2"; "gp3"; "io1"; "standard" ])
          "storage_type" T_string;
        a "username" T_string;
        a "password" T_string;
        a ~format:Name_format ~refs_to:[ ("DBSUBNETGRP", "name") ]
          "db_subnet_group_name" T_string;
        a ~format:Id_format ~refs_to:[ ("SG", "id") ] "sg_ids" (T_list T_string);
        a ~default:(bool_default false) "multi_az" T_bool;
        a ~default:(bool_default false) "publicly_accessible" T_bool;
        a ~default:(bool_default false) "storage_encrypted" T_bool;
        a ~default:(int_default 1) "backup_retention_period" T_int;
        a ~default:(bool_default true) "skip_final_snapshot" T_bool;
      ])

let lb =
  make ~description:"Elastic load balancer" "LB"
    (common
    @ [
        a ~default:(str_default "application")
          ~format:(Enum [ "application"; "network"; "gateway" ])
          "lb_type" T_string;
        a ~default:(bool_default false) "internal" T_bool;
        a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_ids"
          (T_list T_string);
        a ~format:Id_format ~refs_to:[ ("SG", "id") ] "sg_ids" (T_list T_string);
        a ~default:(bool_default false) "enable_deletion_protection" T_bool;
        a ~default:(int_default 60) "idle_timeout" T_int;
      ])

let schemas =
  [
    vpc; subnet; igw; eip; natgw; rt; route; rtassoc; sg; eni; instance; volume;
    attach; bucket; iam_role; iam_policy; iam_attach; instance_profile; dbsubnetgrp;
    db; lb;
  ]

let find name = List.find_opt (fun s -> String.equal s.type_name name) schemas

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Aws.Catalog.find_exn: unknown type %s" name)

let type_names = List.map (fun s -> s.type_name) schemas

let terraform_names =
  [
    ("aws_vpc", "VPC");
    ("aws_subnet", "SUBNET");
    ("aws_internet_gateway", "IGW");
    ("aws_eip", "EIP");
    ("aws_nat_gateway", "NATGW");
    ("aws_route_table", "RT");
    ("aws_route", "ROUTE");
    ("aws_route_table_association", "RTASSOC");
    ("aws_security_group", "SG");
    ("aws_network_interface", "ENI");
    ("aws_instance", "INSTANCE");
    ("aws_ebs_volume", "VOLUME");
    ("aws_volume_attachment", "ATTACH");
    ("aws_s3_bucket", "BUCKET");
    ("aws_iam_role", "IAM_ROLE");
    ("aws_iam_policy", "IAM_POLICY");
    ("aws_iam_role_policy_attachment", "IAM_ATTACH");
    ("aws_iam_instance_profile", "INSTANCE_PROFILE");
    ("aws_db_subnet_group", "DBSUBNETGRP");
    ("aws_db_instance", "DB");
    ("aws_lb", "LB");
  ]

let of_terraform tf = List.assoc_opt tf terraform_names

let to_terraform canonical =
  match
    List.find_opt (fun (_, c) -> String.equal c canonical) terraform_names
  with
  | Some (tf, _) -> tf
  | None -> canonical

(* AWS has no provider-reserved subnet names. *)
let reserved_names : (string * string) list = []
