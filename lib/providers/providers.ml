(** Provider registry: every backend the binary links, keyed by CLI
    name. Azure is the default for backward compatibility with the
    single-provider tool. *)

module Provider = Zodiac_provider.Provider

let all : Provider.t list =
  [ Zodiac_azure.Azure.provider; Zodiac_aws.Aws.provider ]

let default : Provider.t = Zodiac_azure.Azure.provider

let find name =
  List.find_opt (fun p -> String.equal p.Provider.name name) all

let names = List.map (fun p -> p.Provider.name) all

(** Resolve the provider whose Terraform prefix matches a resource type
    name like ["aws_instance"]; used by serve to detect the provider of
    an incoming scan request from its resource prefixes. *)
let of_tf_type tf_name =
  List.find_opt
    (fun p ->
      let prefix = p.Provider.tf_prefix in
      String.length tf_name >= String.length prefix
      && String.equal (String.sub tf_name 0 (String.length prefix)) prefix)
    all

(** Detect the dominant provider of a parsed source by majority vote
    over resource-type prefixes; [None] when nothing matches. *)
let detect tf_types =
  let tally =
    List.fold_left
      (fun acc t ->
        match of_tf_type t with
        | Some p ->
            let n = try List.assoc p.Provider.name acc with Not_found -> 0 in
            (p.Provider.name, n + 1) :: List.remove_assoc p.Provider.name acc
        | None -> acc)
      [] tf_types
  in
  match List.sort (fun (_, a) (_, b) -> compare b a) tally with
  | (name, _) :: _ -> find name
  | [] -> None

(** Detect the provider of raw Terraform source by counting occurrences
    of each backend's resource-type prefix; majority wins, [None] when
    no prefix appears at all. *)
let detect_source src =
  let occurrences needle =
    let n = String.length needle and len = String.length src in
    let rec go i acc =
      if i + n > len then acc
      else if String.equal (String.sub src i n) needle then go (i + n) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  let scored = List.map (fun p -> (occurrences p.Provider.tf_prefix, p)) all in
  match List.stable_sort (fun (a, _) (b, _) -> compare b a) scored with
  | (n, p) :: _ when n > 0 -> Some p
  | _ -> None
