module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Schema = Zodiac_iac.Schema
module Provider = Zodiac_provider.Provider

let finding checker rule r message security_related =
  {
    Checker.checker;
    rule;
    resource = Some (Resource.id r);
    message;
    security_related;
  }

let str_attr r path = match Resource.get r path with Value.Str s -> Some s | _ -> None

let bool_attr r path =
  match Resource.get r path with Value.Bool b -> Some b | _ -> None

let has r path = not (Value.is_null (Resource.get r path))

(* ---------------- terraform validate ------------------------------- *)

let native_analyze provider prog =
  List.concat_map
    (fun r ->
      match provider.Provider.find_schema r.Resource.rtype with
      | None -> []
      | Some schema ->
          let missing =
            List.filter_map
              (fun (a : Schema.attr) ->
                if a.Schema.req = Schema.Required && a.Schema.default = None
                   && not (has r a.Schema.aname)
                then
                  Some
                    (finding "native" "required-attribute" r
                       (Printf.sprintf "%S is required" a.Schema.aname)
                       false)
                else None)
              schema.Schema.attrs
          in
          let bad_enums =
            List.concat_map
              (fun (path, (a : Schema.attr)) ->
                match a.Schema.format with
                | Schema.Enum allowed ->
                    List.filter_map
                      (fun v ->
                        match v with
                        | Value.Str s when not (List.mem s allowed) ->
                            Some
                              (finding "native" "invalid-value" r
                                 (Printf.sprintf "expected %s to be one of [%s], got %S"
                                    path (String.concat ", " allowed) s)
                                 false)
                        | _ -> None)
                      (Resource.get_all r path)
                | _ -> [])
              (Schema.leaf_paths schema)
          in
          let conflicts =
            match r.Resource.rtype with
            | "VM" ->
                let both_images = has r "source_image_ref" && has r "source_image_id" in
                let no_auth =
                  (not (has r "admin_password"))
                  && (not (has r "admin_ssh_key"))
                  && bool_attr r "password_authentication_enabled" <> Some false
                in
                (if both_images then
                   [
                     finding "native" "conflicting-attributes" r
                       "source_image_ref conflicts with source_image_id" false;
                   ]
                 else [])
                @
                if no_auth then
                  [
                    finding "native" "missing-authentication" r
                      "one of admin_password or admin_ssh_key must be declared" false;
                  ]
                else []
            | _ -> []
          in
          missing @ bad_enums @ conflicts)
    (Program.resources prog)

let native provider =
  {
    Checker.name = "Native";
    spec_format = "JSON";
    input_phase = "Config";
    supports_plan_json = true;
    analyze = native_analyze provider;
  }

(* ---------------- security rule helpers ----------------------------- *)

let sg_rule_findings checker prog ~ports ~rule_name ~message =
  List.concat_map
    (fun r ->
      if not (String.equal r.Resource.rtype "SG") then []
      else
        match Resource.attr r "rule" with
        | Some (Value.List rules) ->
            List.filter_map
              (fun rule ->
                match rule with
                | Value.Block fields ->
                    let get k = List.assoc_opt k fields in
                    let open_world = get "source_cidr" = Some (Value.Str "0.0.0.0/0") in
                    let inbound = get "dir" = Some (Value.Str "Inbound") in
                    let allow = get "access" = Some (Value.Str "Allow") in
                    let port_hit =
                      match get "dest_port_range" with
                      | Some (Value.Str p) -> ports = [] || List.mem p ports
                      | _ -> false
                    in
                    if open_world && inbound && allow && port_hit then
                      Some (finding checker rule_name r message true)
                    else None
                | _ -> None)
              rules
        | _ -> [])
    (Program.resources prog)

(* ---------------- tfsec --------------------------------------------- *)

let tfsec_analyze prog =
  sg_rule_findings "tfsec" prog ~ports:[ "22"; "3389" ] ~rule_name:"azure-network-ssh-blocked-from-internet"
    ~message:"SSH/RDP port open to the internet"
  @ List.concat_map
      (fun r ->
        match r.Resource.rtype with
        | "SA" when bool_attr r "public_access_enabled" = Some true ->
            [
              finding "tfsec" "azure-storage-public-access" r
                "storage account allows public access" true;
            ]
        | "SA" when bool_attr r "https_only" = Some false ->
            [
              finding "tfsec" "azure-storage-enforce-https" r
                "storage account does not enforce HTTPS" true;
            ]
        | "KV" when bool_attr r "purge_protection_enabled" = Some false && has r "network_acls" ->
            [
              finding "tfsec" "azure-keyvault-no-purge" r
                "key vault purge protection disabled" true;
            ]
        | _ -> [])
      (Program.resources prog)

let tfsec =
  {
    Checker.name = "TFSec";
    spec_format = "JSON";
    input_phase = "Plan";
    supports_plan_json = true;
    analyze = tfsec_analyze;
  }

(* ---------------- checkov ------------------------------------------- *)

let checkov_analyze prog =
  sg_rule_findings "checkov" prog ~ports:[] ~rule_name:"CKV_AZURE_9"
    ~message:"security rule allows ingress from 0.0.0.0/0"
  @ List.concat_map
      (fun r ->
        let f rule message = [ finding "checkov" rule r message true ] in
        match r.Resource.rtype with
        | "SA" ->
            (if bool_attr r "https_only" <> Some true then
               f "CKV_AZURE_3" "storage account should enforce HTTPS"
             else [])
            @ (match str_attr r "min_tls" with
              | Some ("TLS1_0" | "TLS1_1") ->
                  f "CKV_AZURE_44" "storage account should require TLS1_2"
              | Some _ | None -> [] (* provider default is TLS1_2 *))
            @
            if bool_attr r "public_access_enabled" = Some true then
              f "CKV_AZURE_59" "storage account should deny public access"
            else []
        | "VM" ->
            if has r "admin_password" then
              f "CKV_AZURE_149" "VM should disable password authentication"
            else []
        | "SUBNET" ->
            (* flagged when no SG association exists in the program *)
            let protected =
              List.exists
                (fun assoc ->
                  String.equal assoc.Resource.rtype "SGASSOC"
                  &&
                  match Resource.get assoc "subnet_id" with
                  | Value.Ref reference -> String.equal reference.Value.rname r.Resource.rname
                  | _ -> false)
                (Program.resources prog)
            in
            if not protected then
              f "CKV2_AZURE_31" "subnet should be protected by a security group"
            else []
        | "KV" ->
            (if bool_attr r "purge_protection_enabled" <> Some true then
               f "CKV_AZURE_110" "key vault should enable purge protection"
             else [])
            @
            if not (has r "network_acls") then
              f "CKV_AZURE_109" "key vault should restrict network access"
            else []
        | "ACR" ->
            if bool_attr r "admin_enabled" = Some true then
              f "CKV_AZURE_137" "container registry should disable admin account"
            else []
        | "WEBAPP" | "FUNC" ->
            if bool_attr r "https_only" <> Some true then
              f "CKV_AZURE_14" "web app should redirect HTTP to HTTPS"
            else []
        | "AKS" ->
            if bool_attr r "role_based_access_control_enabled" = Some false then
              f "CKV_AZURE_5" "AKS should enable RBAC"
            else []
        | "REDIS" ->
            if bool_attr r "non_ssl_port_enabled" = Some true then
              f "CKV_AZURE_20" "redis cache should not enable the non-SSL port"
            else []
        | "SQLSERVER" ->
            if bool_attr r "public_network_access_enabled" <> Some false then
              f "CKV_AZURE_113" "SQL server should disable public network access"
            else []
        | "IP" ->
            if str_attr r "sku" = Some "Basic" then
              f "CKV_AZURE_226" "public IPs should use the Standard sku for zone resilience"
            else []
        | _ -> [])
      (Program.resources prog)

let checkov =
  {
    Checker.name = "Checkov";
    spec_format = "YAML";
    input_phase = "Plan";
    supports_plan_json = true;
    analyze = checkov_analyze;
  }

(* ---------------- tfcomp -------------------------------------------- *)

let tfcomp_analyze prog =
  List.concat_map
    (fun r ->
      match r.Resource.rtype with
      | "GW" when str_attr r "sku" = Some "Basic" ->
          [
            finding "tfcomp" "gw-basic-deprecated" r
              "Basic sku VPN gateways are deprecated" true;
          ]
      | "IP"
        when str_attr r "allocation" = Some "Dynamic"
             && str_attr r "sku" = Some "Basic" ->
          [
            finding "tfcomp" "ip-dynamic-legacy" r
              "dynamic Basic public IPs are being retired" true;
          ]
      | "VM" when str_attr r "admin_username" = Some "admin" ->
          [
            finding "tfcomp" "vm-default-admin" r
              "VM uses a default administrator name" true;
          ]
      | "REDIS" when bool_attr r "non_ssl_port_enabled" = Some true ->
          [
            finding "tfcomp" "redis-plaintext-port" r "redis non-SSL port enabled"
              true;
          ]
      | "SA" when (match str_attr r "name" with Some n -> String.length n > 24 | None -> false) ->
          [
            finding "tfcomp" "storage-name-length" r
              "storage account names must be at most 24 characters" false;
          ]
      | _ -> [])
    (Program.resources prog)

let tfcomp =
  {
    Checker.name = "TFComp";
    spec_format = "BDD";
    input_phase = "Plan";
    supports_plan_json = true;
    analyze = tfcomp_analyze;
  }

(* ---------------- regula -------------------------------------------- *)

let regula_analyze prog =
  sg_rule_findings "regula" prog ~ports:[ "*" ] ~rule_name:"FG_R00191"
    ~message:"security rule allows any traffic from the internet"
  @ List.concat_map
      (fun r ->
        let f rule message = [ finding "regula" rule r message true ] in
        match r.Resource.rtype with
        | "KV" when bool_attr r "public_network_access_enabled" <> Some false ->
            f "FG_R00213" "key vault allows public network access"
        | "AKS" when bool_attr r "private_cluster_enabled" <> Some true ->
            f "FG_R00225" "AKS API server is publicly reachable"
        | "MYSQL" when bool_attr r "geo_redundant_backup_enabled" = Some false ->
            f "FG_R00478" "MySQL geo-redundant backup disabled"
        | "LOGWS" -> (
            match Resource.get r "retention_in_days" with
            | Value.Int d when d < 30 -> f "FG_R00435" "log retention below 30 days"
            | _ -> [])
        | _ -> [])
      (Program.resources prog)

let regula =
  {
    Checker.name = "Regula";
    spec_format = "OPA";
    input_phase = "Plan";
    supports_plan_json = true;
    analyze = regula_analyze;
  }

(* ---------------- tflint -------------------------------------------- *)

(* TFLint only consumes HCL configurations; it cannot read the JSON
   plans Zodiac test cases are expressed in (Table 4 row 6). *)
let tflint =
  {
    Checker.name = "TFLint";
    spec_format = "HCL";
    input_phase = "Config";
    supports_plan_json = false;
    analyze = (fun _ -> []);
  }

let all provider = [ native provider; tfsec; checkov; tfcomp; regula; tflint ]
