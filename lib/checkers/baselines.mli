(** The baseline checkers Zodiac is compared against in Table 4.

    Each is a faithful miniature of the corresponding tool's rule
    style and input format:

    - {b native}: [terraform validate] — provider-schema conformance
      (missing required attributes, declared enums, conflicts);
    - {b tfsec}: a small security rule set on the plan;
    - {b checkov}: a broad security/compliance rule set on the plan;
    - {b tfcomp}: a handful of BDD-style conventions;
    - {b regula}: an OPA/Rego-flavoured policy set;
    - {b tflint}: per-attribute lints on HCL only — it cannot consume
      Zodiac's JSON test cases at all. *)

val native : Zodiac_provider.Provider.t -> Checker.t
val tfsec : Checker.t
val checkov : Checker.t
val tfcomp : Checker.t
val regula : Checker.t
val tflint : Checker.t

val all : Zodiac_provider.Provider.t -> Checker.t list
