module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph

type action =
  | Create of Resource.id
  | Update_in_place of Resource.id * string list
  | Replace of Resource.id * string list
  | Destroy of Resource.id
  | Noop of Resource.id

(* Which attribute changes force replacement is provider knowledge
   (names and locations are immutable everywhere in Azure and most of
   AWS; structural attributes vary per type). *)
let immutable_attrs provider rtype =
  provider.Zodiac_provider.Provider.immutable_attrs rtype

let changed_paths old_r new_r =
  let paths =
    List.sort_uniq compare (Resource.attr_paths old_r @ Resource.attr_paths new_r)
  in
  List.filter
    (fun path -> not (Value.equal (Resource.get old_r path) (Resource.get new_r path)))
    paths

let matches_prefix immutables path =
  List.exists
    (fun im ->
      String.equal im path
      || (String.length path > String.length im
         && String.sub path 0 (String.length im + 1) = im ^ "."))
    immutables

let plan ~provider ~current ~desired =
  let desired_graph = Graph.build desired in
  (* first pass: direct classification *)
  let direct =
    List.map
      (fun new_r ->
        let id = Resource.id new_r in
        match Program.find current id with
        | None -> Create id
        | Some old_r -> (
            match changed_paths old_r new_r with
            | [] -> Noop id
            | changes ->
                let forces_replace =
                  List.exists
                    (matches_prefix (immutable_attrs provider id.Resource.rtype))
                    changes
                in
                if forces_replace then Replace (id, changes)
                else Update_in_place (id, changes)))
      (Program.resources desired)
  in
  let destroys =
    List.filter_map
      (fun old_r ->
        let id = Resource.id old_r in
        if Program.mem desired id then None else Some (Destroy id))
      (Program.resources current)
  in
  (* replacement cascade: anything transitively referencing a replaced
     resource must be replaced too *)
  let replaced_ids =
    List.filter_map (function Replace (id, _) -> Some id | _ -> None) direct
  in
  let cascade =
    List.concat_map (fun id -> Graph.reaching desired_graph id) replaced_ids
  in
  let in_cascade id = List.exists (Resource.equal_id id) cascade in
  let direct =
    List.map
      (fun action ->
        match action with
        | Noop id when in_cascade id -> Replace (id, [])
        | Update_in_place (id, changes) when in_cascade id -> Replace (id, changes)
        | other -> other)
      direct
  in
  direct @ destroys

type result = {
  actions : action list;
  recreated : Resource.id list;
  outcome : Arm.outcome;
}

let apply ~provider ?rules ~current ~desired () =
  let actions = plan ~provider ~current ~desired in
  let recreated =
    List.filter_map (function Replace (id, _) -> Some id | _ -> None) actions
  in
  (* The recreated and created resources must pass the full deployment
     validation; in-place updates and noops are re-validated as part of
     the same program (the cloud re-checks the whole configuration). *)
  let outcome =
    match rules with
    | Some rules -> Arm.deploy ~provider ~rules desired
    | None -> Arm.deploy ~provider desired
  in
  { actions; recreated; outcome }

let disruption result = List.length result.recreated
