(** Provider-side attribute defaults derived from the catalogue.

    When an IaC program omits an optional attribute that has a declared
    default (e.g. [GW.active_active = false]), the cloud applies the
    default; semantic checks must therefore be evaluated against the
    {e effective} configuration. *)

val lookup :
  Zodiac_provider.Provider.t ->
  rtype:string ->
  attr:string ->
  Zodiac_iac.Value.t option
(** Default for a dotted attribute path of a resource type, if any —
    partially applied, suitable as the [defaults] argument of
    {!Zodiac_spec.Eval}. *)

val effective :
  Zodiac_provider.Provider.t -> Zodiac_iac.Resource.t -> Zodiac_iac.Resource.t
(** Materialize top-level defaults into the resource (nested-block
    defaults are left to the lookup path since absent blocks stay
    absent). *)
