module Provider = Zodiac_provider.Provider
module Schema = Zodiac_iac.Schema
module Resource = Zodiac_iac.Resource

let lookup provider ~rtype ~attr = Provider.defaults provider ~rtype ~attr

let effective provider r =
  match provider.Provider.find_schema r.Resource.rtype with
  | None -> r
  | Some schema ->
      List.fold_left
        (fun r (a : Schema.attr) ->
          match a.Schema.default with
          | Some d when Resource.attr r a.Schema.aname = None ->
              { r with Resource.attrs = r.Resource.attrs @ [ (a.Schema.aname, d) ] }
          | Some _ | None -> r)
        r schema.Schema.attrs
