(** Live updates to an existing deployment (§1).

    Deployment failures do not only threaten initial provisioning:
    updating infrastructure that is already serving traffic is riskier
    still, because some attribute changes cannot be applied in place —
    Azure forces the resource (and transitively everything referencing
    it) to be destroyed and recreated. This module plans an update the
    way [terraform plan] would and simulates applying it, reusing the
    semantic rule engine for the create steps. *)

type action =
  | Create of Zodiac_iac.Resource.id
  | Update_in_place of Zodiac_iac.Resource.id * string list
      (** changed attribute paths, all mutable *)
  | Replace of Zodiac_iac.Resource.id * string list
      (** changed attribute paths, at least one immutable — destroy and
          recreate, cascading to dependents *)
  | Destroy of Zodiac_iac.Resource.id
  | Noop of Zodiac_iac.Resource.id

val immutable_attrs : Zodiac_provider.Provider.t -> string -> string list
(** Attribute paths that force replacement for a resource type
    (names and locations everywhere; plus type-specific ones such as
    [VPC.address_space] — the paper's CIDR-fix example). *)

val plan :
  provider:Zodiac_provider.Provider.t ->
  current:Zodiac_iac.Program.t ->
  desired:Zodiac_iac.Program.t ->
  action list
(** Diff two programs into actions. Replacement cascades: a resource
    transitively referencing a replaced one is replaced as well. *)

type result = {
  actions : action list;
  recreated : Zodiac_iac.Resource.id list;
      (** resources destroyed and recreated (service disruption) *)
  outcome : Arm.outcome;  (** of deploying the desired program *)
}

val apply :
  provider:Zodiac_provider.Provider.t ->
  ?rules:Rules.t list ->
  current:Zodiac_iac.Program.t ->
  desired:Zodiac_iac.Program.t ->
  unit ->
  result
(** Simulate the update. The desired program goes through the full
    five-phase deployment validation; a failure mid-update leaves the
    recreated resources destroyed — exactly the paper's rollback
    hazard. *)

val disruption : result -> int
(** Number of resources that incur downtime (recreated), the
    update-time analogue of the rollback radius. *)
