module Prng = Zodiac_util.Prng
module Program = Zodiac_iac.Program

type kind = Throttled | Timeout | Polling_flake | Quota_race

let kind_to_string = function
  | Throttled -> "throttled"
  | Timeout -> "timeout"
  | Polling_flake -> "polling-flake"
  | Quota_race -> "quota-race"

let kind_phase = function
  | Throttled -> Rules.Create
  | Timeout -> Rules.Pre_sync
  | Polling_flake -> Rules.Polling
  | Quota_race -> Rules.Create

(* Weighted mix loosely matching Azure war stories: throttling
   dominates, quota races are rare. *)
let kind_weights = [ (50, Throttled); (20, Timeout); (20, Polling_flake); (10, Quota_race) ]

let retry_after = function
  | Throttled -> 4.0
  | Timeout -> 1.0
  | Polling_flake -> 2.0
  | Quota_race -> 8.0

type fault = { kind : kind; phase : Rules.phase; retry_after : float }
type response = Outcome of Arm.outcome | Fault of fault

type config = { seed : int; fault_rate : float; max_consecutive : int }

let default_config = { seed = 7; fault_rate = 0.15; max_consecutive = 3 }

type t = {
  provider : Zodiac_provider.Provider.t;
  config : config;
  rules : Rules.t list;
  quota : Quota.t;
  prng : Prng.t;
  mutable last : Program.t option;  (** program of the latest faulted call *)
  mutable consecutive : int;
  mutable injected : int;
  tally : (kind, int) Hashtbl.t;
}

let create ~provider ?rules ?(quota = Quota.unlimited) config =
  let rules =
    match rules with
    | Some r -> r
    | None -> provider.Zodiac_provider.Provider.ground_truth ()
  in
  {
    provider;
    config = { config with max_consecutive = max 1 config.max_consecutive };
    rules;
    quota;
    prng = Prng.create config.seed;
    last = None;
    consecutive = 0;
    injected = 0;
    tally = Hashtbl.create 4;
  }

let same_program t prog =
  match t.last with Some p -> Program.equal p prog | None -> false

let deploy t prog =
  let want_fault = Prng.chance t.prng t.config.fault_rate in
  let burst_exhausted =
    same_program t prog && t.consecutive >= t.config.max_consecutive
  in
  if want_fault && not burst_exhausted then begin
    let kind = Prng.weighted t.prng kind_weights in
    t.consecutive <- (if same_program t prog then t.consecutive + 1 else 1);
    t.last <- Some prog;
    t.injected <- t.injected + 1;
    Hashtbl.replace t.tally kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally kind));
    Fault { kind; phase = kind_phase kind; retry_after = retry_after kind }
  end
  else begin
    t.consecutive <- 0;
    t.last <- None;
    Outcome (Arm.deploy ~provider:t.provider ~rules:t.rules ~quota:t.quota prog)
  end

let injected t = t.injected

let injected_by_kind t =
  List.map
    (fun kind -> (kind, Option.value ~default:0 (Hashtbl.find_opt t.tally kind)))
    [ Throttled; Timeout; Polling_flake; Quota_race ]
