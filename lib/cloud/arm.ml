module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema
module Eval = Zodiac_spec.Eval
module Check = Zodiac_spec.Check
module Provider = Zodiac_provider.Provider
module Cidr = Zodiac_util.Cidr

type failure = {
  resource : Resource.id;
  phase : Rules.phase;
  rule_id : string;
  message : string;
  culprits : Resource.id list;
}

type outcome = {
  deployed : Resource.id list;
  failure : failure option;
  halted : Resource.id list;
  post_sync_issues : failure list;
}

let defaults provider = Defaults.lookup provider

let resource_name r =
  match Resource.attr r "name" with Some (Value.Str s) -> Some s | _ -> None

let name_conflict provider r deployed_resources =
  match resource_name r with
  | None -> None
  | Some name ->
      let scope_attr = provider.Provider.name_scope_attr r.Resource.rtype in
      let scope_of res =
        match scope_attr with
        | None -> Value.Null
        | Some attr -> Resource.get res attr
      in
      List.find_opt
        (fun other ->
          String.equal other.Resource.rtype r.Resource.rtype
          && resource_name other = Some name
          && Value.equal (scope_of other) (scope_of r))
        deployed_resources

(* ------- schema conformance (plugin-phase engine checks) ----------- *)

let rec check_required_attrs prefix (attrs : Schema.attr list) (value_of : string -> Value.t) errors =
  List.fold_left
    (fun errors (a : Schema.attr) ->
      let path = if prefix = "" then a.Schema.aname else prefix ^ "." ^ a.Schema.aname in
      let v = value_of path in
      match a.Schema.req with
      | Schema.Required when a.Schema.default = None -> (
          match v with
          | Value.Null ->
              if prefix = "" then
                Printf.sprintf "required attribute %s is missing" path :: errors
              else errors (* nested requireds only checked within present blocks *)
          | _ -> descend path a v errors)
      | Schema.Required | Schema.Optional | Schema.Computed -> (
          match v with Value.Null -> errors | _ -> descend path a v errors))
    errors attrs

and descend path (a : Schema.attr) v errors =
  (* When a block attribute is present, check its required children. *)
  match (a.Schema.atype, v) with
  | (Schema.T_block inner | Schema.T_list (Schema.T_block inner)), (Value.Block _ | Value.List _) ->
      let value_of child_path =
        (* child_path includes our prefix; strip to relative lookup *)
        let rel = String.sub child_path (String.length path + 1)
                    (String.length child_path - String.length path - 1) in
        let rec get v segs =
          match (v, segs) with
          | _, [] -> v
          | Value.Block fields, seg :: rest -> (
              match List.assoc_opt seg fields with
              | Some inner -> get inner rest
              | None -> Value.Null)
          | Value.List (x :: _), segs -> get x segs
          | _, _ -> Value.Null
        in
        get v (String.split_on_char '.' rel)
      in
      let missing = check_required_attrs path inner value_of [] in
      (* Required children inside present blocks do count. *)
      List.fold_left
        (fun errors (child : Schema.attr) ->
          let cpath = path ^ "." ^ child.Schema.aname in
          if child.Schema.req = Schema.Required && child.Schema.default = None then
            match value_of cpath with
            | Value.Null ->
                Printf.sprintf "required attribute %s is missing" cpath :: errors
            | _ -> errors
          else errors)
        (missing @ errors) inner
  | _ -> errors

let leaf_value_errors provider schema r =
  List.fold_left
    (fun errors (path, (a : Schema.attr)) ->
      let values = Resource.get_all r path in
      List.fold_left
        (fun errors v ->
          match (a.Schema.format, v) with
          | Schema.Enum allowed, Value.Str s when not (List.mem s allowed) ->
              Printf.sprintf "invalid value %S for %s" s path :: errors
          | Schema.Region, Value.Str s when not (provider.Provider.is_region s) ->
              Printf.sprintf "unknown region %S" s :: errors
          | Schema.Cidr_format, Value.Str s when Cidr.of_string s = None ->
              Printf.sprintf "malformed CIDR %S in %s" s path :: errors
          | Schema.Cidr_format, Value.List items ->
              List.fold_left
                (fun errors item ->
                  match item with
                  | Value.Str s when Cidr.of_string s = None ->
                      Printf.sprintf "malformed CIDR %S in %s" s path :: errors
                  | _ -> errors)
                errors items
          | _ -> errors)
        errors values)
    [] (Schema.leaf_paths schema)

let schema_errors provider r =
  match provider.Provider.find_schema r.Resource.rtype with
  | None ->
      (* Resource types outside Zodiac's catalogue ("unattended" types,
         §4.1) are still perfectly valid cloud resources: the real
         cloud knows them even though Zodiac does not. They deploy as
         no-ops here. *)
      []
  | Some schema ->
      let missing =
        check_required_attrs "" schema.Schema.attrs
          (fun path -> Resource.get r path)
          []
      in
      (* Computed attributes must not be user-assigned at top level. *)
      missing @ leaf_value_errors provider schema r

(* ------- rule evaluation helpers ------------------------------------ *)

let rules_by_phase rules phase = List.filter (fun r -> r.Rules.phase = phase) rules

(* Violations attributable to the resource just deployed: those whose
   assignment includes it, or that did not exist before it was added
   (e.g. a NIC intruding on a gateway subnet violates a check binding
   only the gateway and the subnet). *)
let violations_involving ~defaults ~graph ~graph_before rule (id : Resource.id) =
  let types =
    List.map (fun (b : Check.binding) -> b.Check.btype) rule.Rules.check.Check.bindings
  in
  let prog_types = Program.types (Graph.program graph) in
  if not (List.for_all (fun ty -> List.mem ty prog_types) types) then []
  else
    match Eval.violations ~defaults graph rule.Rules.check with
    | [] -> []
    | violations ->
        let direct =
          List.filter
            (fun assignment ->
              List.exists (fun (_, rid) -> Resource.equal_id rid id) assignment)
            violations
        in
        if direct <> [] then direct
        else
          let before = Eval.violations ~defaults graph_before rule.Rules.check in
          List.filter (fun a -> not (List.mem a before)) violations

let first_violation ~defaults ~graph ~graph_before rules_in_phase (id : Resource.id) =
  List.find_map
    (fun rule ->
      match violations_involving ~defaults ~graph ~graph_before rule id with
      | [] -> None
      | assignment :: _ ->
          Some
            {
              resource = id;
              phase = rule.Rules.phase;
              rule_id = rule.Rules.rule_id;
              message = rule.Rules.message;
              culprits = List.map snd assignment;
            })
    rules_in_phase

(* Regional sku availability applies to the sku-bearing compute types. *)
let regional_sku_error provider quota r =
  match provider.Provider.sku_location_attr r.Resource.rtype with
  | None -> None
  | Some attr -> (
      match (Resource.get r attr, Resource.get r "location") with
      | Value.Str sku, Value.Str region ->
          Quota.check_regional_sku quota
            ~restricted:provider.Provider.sku_restricted_regions ~sku ~region
      | _ -> None)

let deploy ~provider ?rules ?(quota = Quota.unlimited) prog =
  let rules =
    match rules with Some r -> r | None -> provider.Provider.ground_truth ()
  in
  let defaults = defaults provider in
  let plugin_rules = rules_by_phase rules Rules.Plugin in
  let presync_rules = rules_by_phase rules Rules.Pre_sync in
  let create_rules = rules_by_phase rules Rules.Create in
  let polling_rules = rules_by_phase rules Rules.Polling in
  let postsync_rules = rules_by_phase rules Rules.Post_sync in
  let full_graph = Graph.build prog in
  let order = Graph.topological_order full_graph in
  let rec step deployed_ids pending =
    match pending with
    | [] ->
        (* Everything created: check for silent state inconsistencies. *)
        let issues =
          List.concat_map
            (fun rule ->
              List.map
                (fun assignment ->
                  let culprits = List.map snd assignment in
                  {
                    resource =
                      (match culprits with c :: _ -> c | [] -> assert false);
                    phase = Rules.Post_sync;
                    rule_id = rule.Rules.rule_id;
                    message = rule.Rules.message;
                    culprits;
                  })
                (Eval.violations ~defaults full_graph rule.Rules.check))
            postsync_rules
        in
        {
          deployed = List.rev deployed_ids;
          failure = None;
          halted = [];
          post_sync_issues = issues;
        }
    | id :: rest -> (
        let halt failure =
          {
            deployed = List.rev deployed_ids;
            failure = Some failure;
            halted = id :: rest;
            post_sync_issues = [];
          }
        in
        match Program.find prog id with
        | None -> step deployed_ids rest
        | Some r -> (
            (* Phase 1: provider plugin validation. *)
            match schema_errors provider r with
            | msg :: _ ->
                halt
                  {
                    resource = id;
                    phase = Rules.Plugin;
                    rule_id = "ENGINE-SCHEMA";
                    message = msg;
                    culprits = [ id ];
                  }
            | [] -> (
                let partial =
                  Program.filter
                    (fun r' ->
                      let rid = Resource.id r' in
                      Resource.equal_id rid id
                      || List.exists (Resource.equal_id rid) deployed_ids)
                    prog
                in
                let graph = Graph.build partial in
                let graph_before = Graph.build (Program.remove partial id) in
                match first_violation ~defaults ~graph ~graph_before plugin_rules id with
                | Some f -> halt f
                | None -> (
                    (* Phase 2: pre-deployment state sync. *)
                    let deployed_resources =
                      List.filter_map (Program.find prog) deployed_ids
                    in
                    match name_conflict provider r deployed_resources with
                    | Some other ->
                        halt
                          {
                            resource = id;
                            phase = Rules.Pre_sync;
                            rule_id = "ENGINE-EXISTS";
                            message =
                              Printf.sprintf "%s already exists"
                                (Resource.id_to_string (Resource.id other));
                            culprits = [ id; Resource.id other ];
                          }
                    | None -> (
                        match
                          first_violation ~defaults ~graph ~graph_before presync_rules id
                        with
                        | Some f -> halt f
                        | None -> (
                            (* Phase 3: creation request. *)
                            let dangling =
                              List.filter
                                (fun (_, (reference : Value.reference)) ->
                                  not
                                    (Program.mem prog
                                       {
                                         Resource.rtype = reference.rtype;
                                         rname = reference.rname;
                                       }))
                                (Resource.references r)
                            in
                            match dangling with
                            | (_, reference) :: _ ->
                                halt
                                  {
                                    resource = id;
                                    phase = Rules.Create;
                                    rule_id = "ENGINE-NOTFOUND";
                                    message =
                                      Printf.sprintf
                                        "referenced resource %s.%s was not found"
                                        reference.Value.rtype reference.Value.rname;
                                    culprits = [ id ];
                                  }
                            | [] -> (
                                (* opt-in subscription quotas and
                                   regional sku availability (§6) *)
                                let deployed_of_type =
                                  List.length
                                    (List.filter
                                       (fun (d : Resource.id) ->
                                         String.equal d.Resource.rtype id.Resource.rtype)
                                       deployed_ids)
                                in
                                let quota_error =
                                  match
                                    Quota.check_type_quota quota
                                      ~rtype:id.Resource.rtype ~deployed_of_type
                                  with
                                  | Some m -> Some m
                                  | None ->
                                      Quota.check_total_quota quota
                                        ~deployed_total:(List.length deployed_ids)
                                in
                                match quota_error with
                                | Some message ->
                                    halt
                                      {
                                        resource = id;
                                        phase = Rules.Create;
                                        rule_id = "ENGINE-QUOTA";
                                        message;
                                        culprits = [ id ];
                                      }
                                | None -> (
                                match regional_sku_error provider quota r with
                                | Some message ->
                                    halt
                                      {
                                        resource = id;
                                        phase = Rules.Create;
                                        rule_id = "ENGINE-REGION-SKU";
                                        message;
                                        culprits = [ id ];
                                      }
                                | None -> (
                                match
                                  first_violation ~defaults ~graph ~graph_before create_rules id
                                with
                                | Some f -> halt f
                                | None -> (
                                    (* Phase 4: async polling. *)
                                    match
                                      first_violation ~defaults ~graph ~graph_before
                                        polling_rules id
                                    with
                                    | Some f -> halt f
                                    | None -> step (id :: deployed_ids) rest))))))))))
  in
  step [] order

let success outcome = outcome.failure = None && outcome.post_sync_issues = []

let first_error outcome =
  match outcome.failure with
  | Some f -> Some f
  | None -> ( match outcome.post_sync_issues with f :: _ -> Some f | [] -> None)

type radius = { halted_types : string list; rollback_types : string list }

let distinct_types ids =
  List.fold_left
    (fun acc (id : Resource.id) ->
      if List.mem id.Resource.rtype acc then acc else acc @ [ id.Resource.rtype ])
    [] ids

let blast_radius prog outcome =
  match outcome.failure with
  | None -> { halted_types = []; rollback_types = [] }
  | Some failure ->
      let graph = Graph.build prog in
      let deployed id = List.exists (Resource.equal_id id) outcome.deployed in
      (* A fix may require recreating a culprit; everything deployed that
         transitively references a culprit must then be recreated too. *)
      let rollback =
        List.concat_map
          (fun culprit ->
            culprit :: List.filter deployed (Graph.reaching graph culprit))
          failure.culprits
      in
      {
        halted_types = distinct_types outcome.halted;
        rollback_types = distinct_types rollback;
      }
