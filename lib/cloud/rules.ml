module Provider = Zodiac_provider.Provider

type phase = Provider.phase = Plugin | Pre_sync | Create | Polling | Post_sync

type t = Provider.rule = {
  rule_id : string;
  check : Zodiac_spec.Check.t;
  phase : phase;
  message : string;
}

let phase_to_string = Provider.phase_to_string
let rule = Provider.rule

let find rules rule_id =
  List.find_opt (fun r -> String.equal r.rule_id rule_id) rules

let rules_for_type rules rtype =
  List.filter
    (fun r ->
      List.exists
        (fun (b : Zodiac_spec.Check.binding) ->
          String.equal b.Zodiac_spec.Check.btype rtype)
        r.check.Zodiac_spec.Check.bindings)
    rules
