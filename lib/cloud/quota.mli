(** Subscription quotas and regional sku availability — the two
    constraint classes the paper explicitly leaves unsupported (§6,
    "Unsupported constraints"), implemented here as opt-in extensions
    of the deployment engine.

    Both are off by default so the blackbox mining/validation setting
    matches the paper's; pass a {!t} to {!Arm.deploy} to turn them on. *)

type t = {
  per_type : (string * int) list;
      (** maximum deployed resources per type (subscription quota) *)
  total : int option;  (** overall resource cap, if any *)
  regional_skus : bool;
      (** enforce the provider's restricted-region table: certain VM
          skus are unavailable in certain regions *)
}

val unlimited : t
(** No quotas, no regional enforcement (the paper's setting). *)

val default_subscription : t
(** Realistic defaults for a pay-as-you-go subscription: 10 public
    IPs, 25 VMs, 50 disks, 1000 resources overall, regional skus
    enforced. *)

val strict : t
(** Tiny limits, for tests. *)

val check_type_quota : t -> rtype:string -> deployed_of_type:int -> string option
(** [Some message] when creating one more resource of [rtype] would
    exceed the quota. *)

val check_total_quota : t -> deployed_total:int -> string option

val check_regional_sku :
  t -> restricted:(string * string list) list -> sku:string -> region:string ->
  string option
(** [Some message] when the sku is unavailable in the region, per the
    provider's [(sku, regions where it is unavailable)] table. *)
