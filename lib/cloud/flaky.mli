(** Transient-fault injection over the {!Arm} simulator.

    The real Azure control plane is not an infallible
    [Program.t -> outcome] function: it throttles (HTTP 429 with
    [Retry-After]), times out state-synchronization reads, loses async
    polling operations, and races concurrent deployments on shared
    quota. All of these are {e transient} — retrying the same request
    eventually observes the genuine outcome — and none of them say
    anything about the program's semantic validity.

    [Flaky] wraps {!Arm.deploy} with a seeded fault process so the
    validation layers above can be exercised against a misbehaving
    cloud while the ground truth stays recoverable:

    - every call either injects a {!fault} (classified by kind and by
      the deployment phase in which it surfaces) or passes through to
      the genuine simulator;
    - fault injection is deterministic in [seed] and the call sequence;
    - bursts are bounded: after [max_consecutive] faults in a row for
      the same program the next call passes through, modelling the
      fact that Azure throttling windows and polling flakes clear.
      A client with a retry budget larger than [max_consecutive] is
      therefore {e guaranteed} to recover the genuine outcome, which
      is what makes verdict stability under faults provable rather
      than merely probable. *)

type kind =
  | Throttled  (** HTTP 429 on the create request *)
  | Timeout  (** state-synchronization read timed out *)
  | Polling_flake  (** async provisioning poll lost or expired *)
  | Quota_race  (** concurrent deployment transiently consumed quota *)

val kind_to_string : kind -> string

val kind_phase : kind -> Rules.phase
(** Deployment phase in which each fault kind surfaces. *)

type fault = {
  kind : kind;
  phase : Rules.phase;
  retry_after : float;  (** server-suggested delay, simulated seconds *)
}

type response =
  | Outcome of Arm.outcome  (** the genuine simulator verdict *)
  | Fault of fault  (** transient failure; retrying may succeed *)

type config = {
  seed : int;
  fault_rate : float;  (** per-call injection probability in [0,1] *)
  max_consecutive : int;
      (** forced pass-through after this many consecutive faults for
          the same program ([>= 1]) *)
}

val default_config : config
(** Nonzero fault rate (0.15), [max_consecutive = 3], seed 7. *)

type t

val create :
  provider:Zodiac_provider.Provider.t ->
  ?rules:Rules.t list ->
  ?quota:Quota.t ->
  config ->
  t
(** [provider]/[rules]/[quota] are forwarded to {!Arm.deploy}. *)

val deploy : t -> Zodiac_iac.Program.t -> response

val injected : t -> int
(** Total faults injected so far. *)

val injected_by_kind : t -> (kind * int) list
(** Injection tally per fault kind (all four kinds listed). *)
