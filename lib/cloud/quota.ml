type t = {
  per_type : (string * int) list;
  total : int option;
  regional_skus : bool;
}

let unlimited = { per_type = []; total = None; regional_skus = false }

let default_subscription =
  {
    per_type = [ ("IP", 10); ("VM", 25); ("DISK", 50); ("GW", 1); ("EXPRESS", 10) ];
    total = Some 1000;
    regional_skus = true;
  }

let strict =
  {
    per_type = [ ("IP", 1); ("VM", 2); ("DISK", 2); ("GW", 1) ];
    total = Some 8;
    regional_skus = true;
  }

let check_type_quota t ~rtype ~deployed_of_type =
  match List.assoc_opt rtype t.per_type with
  | Some limit when deployed_of_type >= limit ->
      Some
        (Printf.sprintf
           "subscription quota exceeded: at most %d %s resources allowed" limit rtype)
  | _ -> None

let check_total_quota t ~deployed_total =
  match t.total with
  | Some limit when deployed_total >= limit ->
      Some (Printf.sprintf "subscription quota exceeded: at most %d resources" limit)
  | _ -> None

let check_regional_sku t ~restricted ~sku ~region =
  if not t.regional_skus then None
  else
    match List.assoc_opt sku restricted with
    | Some unavailable when List.mem region unavailable ->
        Some (Printf.sprintf "sku %s is not available in region %s" sku region)
    | _ -> None
