(** The simulated Azure Resource Manager deployment engine.

    [deploy] walks the program in dependency order (referenced resources
    first) and, for each resource about to be created, replays the five
    phases of Table 3:

    + {b plugin} — provider-side validation: schema conformance
      (required attributes, enum membership, region names, CIDR syntax)
      and plugin-phase ground-truth rules;
    + {b pre-sync} — state synchronization: name collisions within the
      resource's naming scope, plus pre-sync rules;
    + {b create} — the creation request: dangling references and the
      bulk of the ground-truth rules;
    + {b polling} — asynchronous provisioning failures (rules tagged
      polling, which live on slow-to-create resources);
    + {b post-sync} — after the whole deployment, rules whose violation
      silently leaves cloud and IaC state inconsistent.

    The first plugin/pre-sync/create/polling violation halts the
    deployment; post-sync issues are recorded even though every
    resource "deployed". *)

type failure = {
  resource : Zodiac_iac.Resource.id;  (** resource whose creation failed *)
  phase : Rules.phase;
  rule_id : string;  (** ground-truth rule id, or an engine code such as
                         ["ENGINE-REQUIRED"] *)
  message : string;
  culprits : Zodiac_iac.Resource.id list;
      (** resources in the violating instance (fix targets) *)
}

type outcome = {
  deployed : Zodiac_iac.Resource.id list;  (** created before any failure *)
  failure : failure option;
  halted : Zodiac_iac.Resource.id list;  (** never attempted *)
  post_sync_issues : failure list;
}

val deploy :
  provider:Zodiac_provider.Provider.t ->
  ?rules:Rules.t list ->
  ?quota:Quota.t ->
  Zodiac_iac.Program.t ->
  outcome
(** Simulate a deployment against the provider's ground-truth rules
    (default: [provider.ground_truth ()]). Subscription quotas and
    regional sku availability — the paper's unsupported constraint
    classes — are enforced only when a {!Quota.t} is supplied (default
    {!Quota.unlimited}). Deterministic. *)

val success : outcome -> bool
(** No failure and no post-sync inconsistency. *)

val first_error : outcome -> failure option
(** The halting failure, or the first post-sync issue. *)

type radius = {
  halted_types : string list;  (** types blocked behind the failure *)
  rollback_types : string list;
      (** types that must be destroyed/recreated to roll out a fix *)
}

val blast_radius : Zodiac_iac.Program.t -> outcome -> radius
(** Impact of a failed deployment (Figure 6): the halting radius is the
    resource types that could not deploy; the rollback radius is the
    culprit resources plus every deployed resource transitively
    depending on them. Both empty on success. *)

val defaults : Zodiac_provider.Provider.t -> Zodiac_spec.Eval.defaults
(** The provider default lookup, for evaluating checks the way the
    cloud sees configurations. *)
