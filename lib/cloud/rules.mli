(** The shared rule vocabulary of the deployment simulator.

    A rule set plays the role of a cloud's opaque backend requirements:
    the mining and validation engines never read it — they only observe
    deployment outcomes, preserving the paper's blackbox setting. Each
    rule carries the deployment phase in which a violation surfaces
    (Table 3's error taxonomy).

    The types are re-exports of {!Zodiac_provider.Provider}: each
    backend ([Zodiac_azure.Rules], [Zodiac_aws.Rules]) exports its own
    hidden ground-truth list, reached through
    [Provider.t.ground_truth]. *)

type phase = Zodiac_provider.Provider.phase =
  | Plugin  (** rejected by provider plugin before any API call *)
  | Pre_sync  (** state synchronization conflict ("already exists") *)
  | Create  (** creation request rejected by the cloud *)
  | Polling  (** asynchronous provisioning failure on slow resources *)
  | Post_sync  (** deployed, but cloud/IaC states are inconsistent *)

type t = Zodiac_provider.Provider.rule = {
  rule_id : string;
  check : Zodiac_spec.Check.t;
  phase : phase;
  message : string;  (** cloud error message shown on violation *)
}

val phase_to_string : phase -> string

val rule : string -> phase -> string -> string -> t
(** [rule id phase message spec] parses [spec]; raises [Invalid_argument]
    on a malformed spec. *)

val find : t list -> string -> t option
(** Lookup by [rule_id]. *)

val rules_for_type : t list -> string -> t list
(** Rules binding at least one variable of the given resource type. *)
