(** Persistence for validated check sets.

    Validated checks are the pipeline's durable artifact: a team runs
    [zodiac validate] periodically (clouds evolve, §6) and ships the
    resulting check set to CI, where [zodiac scan --checks FILE] lints
    every pull request. Serialization goes through the concrete check
    syntax, which round-trips by construction. *)

val to_json : Zodiac_spec.Check.t list -> Zodiac_util.Json.t
val of_json : Zodiac_util.Json.t -> (Zodiac_spec.Check.t list, string) result

val save : string -> Zodiac_spec.Check.t list -> (unit, string) result
(** Write a check set to a file (pretty JSON). An unwritable path is
    an [Error] with the OS message, never an abort. *)

val save_exn : string -> Zodiac_spec.Check.t list -> unit
(** {!save}, raising [Invalid_argument] on failure (test helper). *)

val load : string -> (Zodiac_spec.Check.t list, string) result
(** Read a check set back; reports the first malformed entry. *)
