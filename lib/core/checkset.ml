module Check = Zodiac_spec.Check
module Spec_parser = Zodiac_spec.Spec_parser
module Spec_printer = Zodiac_spec.Spec_printer
module Json = Zodiac_util.Json

let source_to_string = function
  | Check.Mined -> "mined"
  | Check.Llm_interpolated -> "llm"
  | Check.Authored -> "authored"

let source_of_string = function
  | "mined" -> Check.Mined
  | "llm" -> Check.Llm_interpolated
  | _ -> Check.Authored

let to_json checks =
  Json.Obj
    [
      ("format", Json.String "zodiac-checks-1");
      ( "checks",
        Json.List
          (List.map
             (fun (c : Check.t) ->
               Json.Obj
                 [
                   ("id", Json.String c.Check.cid);
                   ("source", Json.String (source_to_string c.Check.source));
                   ("check", Json.String (Spec_printer.to_string c));
                 ])
             checks) );
    ]

let of_json json =
  match Json.member "checks" json with
  | Json.List entries ->
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | entry :: rest -> (
            match Json.string_value (Json.member "check" entry) with
            | None -> Error "entry without a \"check\" field"
            | Some src -> (
                match Spec_parser.parse src with
                | Error e -> Error e
                | Ok check ->
                    let source =
                      match Json.string_value (Json.member "source" entry) with
                      | Some s -> source_of_string s
                      | None -> Check.Authored
                    in
                    let check =
                      Check.make ~source check.Check.bindings check.Check.cond
                        check.Check.stmt
                    in
                    parse (check :: acc) rest))
      in
      parse [] entries
  | _ -> Error "missing \"checks\" list"

let save path checks =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          match
            output_string oc (Json.to_string ~pretty:true (to_json checks));
            output_char oc '\n'
          with
          | () -> Ok ()
          | exception Sys_error e -> Error e)

let save_exn path checks =
  match save path checks with
  | Ok () -> ()
  | Error e -> invalid_arg ("Checkset: " ^ e)

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Json.of_string text with
      | exception Json.Parse_error e -> Error e
      | json -> of_json json)
