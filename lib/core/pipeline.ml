module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Filter = Zodiac_mining.Filter
module Candidate = Zodiac_mining.Candidate
module Llm = Zodiac_oracle.Llm
module Scheduler = Zodiac_validation.Scheduler
module Arm = Zodiac_cloud.Arm
module Engine = Zodiac_engine.Engine
module Engine_stats = Zodiac_engine.Stats
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Graph = Zodiac_iac.Graph
module Program = Zodiac_iac.Program
module Parallel = Zodiac_util.Parallel

type config = {
  corpus_seed : int;
  corpus_size : int;
  violation_rate : float;
  oracle_seed : int;
  oracle_error_rate : float;
  jobs : int;
  mining : Miner.config;
  thresholds : Filter.thresholds;
  scheduler : Scheduler.config;
  engine : Engine.config;
}

let default_config =
  {
    corpus_seed = 20240704;
    corpus_size = 1200;
    violation_rate = 0.04;
    oracle_seed = 91;
    oracle_error_rate = 0.05;
    jobs = Parallel.recommended_jobs ();
    mining = Miner.default_config;
    thresholds = Filter.default_thresholds;
    scheduler = Scheduler.default_config;
    engine = Engine.default_config;
  }

let quick_config = { default_config with corpus_size = 300 }

type artifacts = {
  config : config;
  projects : Generator.project list;
  corpus : (string * Program.t) list;
  kb : Kb.t;
  mined : Candidate.t list;
  filtered : Filter.outcome;
  llm_refined : Check.t list;
  llm_rejected : int;
  candidates : Check.t list;
  validation : Scheduler.result;
  final_checks : Check.t list;
  counterexample_fps : Check.t list;
  engine_stats : Engine_stats.snapshot;
}

let deploy prog = Arm.success (Arm.deploy prog)

let dedup_checks checks =
  let seen = Hashtbl.create 128 in
  List.filter
    (fun (c : Check.t) ->
      if Hashtbl.mem seen c.Check.cid then false
      else begin
        Hashtbl.replace seen c.Check.cid ();
        true
      end)
    checks

let prepare config =
  let jobs = config.jobs in
  let projects =
    Generator.generate ~violation_rate:config.violation_rate ~jobs
      ~seed:config.corpus_seed ~count:config.corpus_size ()
  in
  let programs =
    Miner.materialize ~jobs (List.map (fun p -> p.Generator.program) projects)
  in
  let corpus =
    List.map2 (fun p prog -> (p.Generator.pname, prog)) projects programs
  in
  let kb = Kb.build ~jobs ~projects:programs () in
  (projects, corpus, kb, programs)

let mine_phase config kb programs =
  let mined = Miner.mine ~config:config.mining ~jobs:config.jobs kb programs in
  let filtered = Filter.run ~thresholds:config.thresholds mined in
  let oracle = Llm.create ~error_rate:config.oracle_error_rate config.oracle_seed in
  let refined, rejected =
    List.fold_left
      (fun (refined, rejected) candidate ->
        match Llm.interpolate oracle candidate with
        | Llm.Refined check -> (check :: refined, rejected)
        | Llm.Unsupported -> (refined, rejected + 1))
      ([], 0) filtered.Filter.interpolation_queue
  in
  let candidates =
    dedup_checks
      (List.map (fun c -> c.Candidate.check) filtered.Filter.kept @ List.rev refined)
  in
  (mined, filtered, List.rev refined, rejected, candidates)

let empty_validation =
  {
    Scheduler.validated = [];
    falsified = [];
    iterations = [];
    deployments = 0;
  }

let mine_only ?(config = default_config) () =
  let projects, corpus, kb, programs = prepare config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase config kb programs
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation = empty_validation;
    final_checks = [];
    counterexample_fps = [];
    engine_stats = Engine_stats.empty;
  }

let run ?(config = default_config) () =
  let projects, corpus, kb, programs = prepare config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase config kb programs
  in
  let engine = Engine.create ~config:config.engine () in
  let deploy = Engine.oracle engine in
  let deploy_batch = Engine.oracle_batch ~jobs:config.jobs engine in
  let validation =
    Scheduler.run ~config:config.scheduler ~jobs:config.jobs ~deploy_batch ~kb
      ~corpus ~deploy candidates
  in
  let final_checks, counterexample_fps =
    Scheduler.counterexample_pass ~jobs:config.jobs ~corpus ~deploy
      validation.Scheduler.validated
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation;
    final_checks;
    counterexample_fps;
    engine_stats = Engine.stats engine;
  }

type violation_report = {
  project : string;
  check : Check.t;
  resources : Zodiac_iac.Resource.id list;
}

let scan ~checks ~corpus =
  let defaults = Arm.defaults in
  List.concat_map
    (fun (project, prog) ->
      let graph = Graph.build prog in
      List.concat_map
        (fun check ->
          List.map
            (fun assignment ->
              { project; check; resources = List.map snd assignment })
            (Eval.violations ~defaults graph check))
        checks)
    corpus
