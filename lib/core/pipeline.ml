module Provider = Zodiac_provider.Provider
module Providers = Zodiac_providers.Providers
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Filter = Zodiac_mining.Filter
module Candidate = Zodiac_mining.Candidate
module Llm = Zodiac_oracle.Llm
module Scheduler = Zodiac_validation.Scheduler
module Arm = Zodiac_cloud.Arm
module Engine = Zodiac_engine.Engine
module Engine_stats = Zodiac_engine.Stats
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Graph = Zodiac_iac.Graph
module Program = Zodiac_iac.Program
module Parallel = Zodiac_util.Parallel
module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec
module Stage = Zodiac_util.Stage
module Shard_stream = Zodiac_util.Shard_stream
module Telemetry = Zodiac_util.Telemetry

type config = {
  provider : Provider.t;
  corpus_seed : int;
  corpus_size : int;
  violation_rate : float;
  oracle_seed : int;
  oracle_error_rate : float;
  jobs : int;
  cache_dir : string option;
  mining : Miner.config;
  thresholds : Filter.thresholds;
  scheduler : Scheduler.config;
  engine : Engine.config;
}

let default_config =
  {
    provider = Providers.default;
    corpus_seed = 20240704;
    corpus_size = 1200;
    violation_rate = 0.04;
    oracle_seed = 91;
    oracle_error_rate = 0.05;
    jobs = Parallel.recommended_jobs ();
    cache_dir = None;
    mining = Miner.default_config;
    thresholds = Filter.default_thresholds;
    scheduler = Scheduler.default_config;
    engine = Engine.default_config;
  }

let quick_config = { default_config with corpus_size = 300 }

type artifacts = {
  config : config;
  projects : Generator.project list;
  corpus : (string * Program.t) list;
  kb : Kb.t;
  mined : Candidate.t list;
  filtered : Filter.outcome;
  llm_refined : Check.t list;
  llm_rejected : int;
  candidates : Check.t list;
  validation : Scheduler.result;
  final_checks : Check.t list;
  counterexample_fps : Check.t list;
  engine_stats : Engine_stats.snapshot;
  cache_stats : Cache.stats;
}

let deploy ~provider prog = Arm.success (Arm.deploy ~provider prog)

let dedup_checks checks =
  let seen = Hashtbl.create 128 in
  List.filter
    (fun (c : Check.t) ->
      if Hashtbl.mem seen c.Check.cid then false
      else begin
        Hashtbl.replace seen c.Check.cid ();
        true
      end)
    checks

(* ---- staged execution ----------------------------------------------
   Every Figure-2 phase is either a [Stage.t] run through [Stage.run]
   (corpus, KB stats, mined candidates — the cacheable artifacts, keyed
   by a fingerprint of everything they depend on, with the incremental
   shrink/extend hooks from the warm-start design) or a plain telemetry
   span (materialize, filter, oracle, validate, counterexample — pure
   compute). The runner applies warm-cache lookup/write, job plumbing
   and per-stage counters uniformly; artifacts stay byte-identical to
   the hand-wired paths for every [jobs] value and cold ≡ warm. *)

let cache_of config = Option.map (fun dir -> Cache.create ~dir ()) config.cache_dir

let zero_cache_stats =
  { Cache.hits = 0; misses = 0; writes = 0; write_failures = 0 }

let cache_stats_of = function
  | Some c -> Cache.stats c
  | None -> zero_cache_stats

let float_bits f = Int64.to_string (Int64.bits_of_float f)

(* Everything the corpus content depends on except its size ([jobs] is
   artifact-invariant by the Parallel contract). *)
let corpus_key config =
  Codec.fingerprint
    [
      "corpus";
      Provider.fingerprint config.provider;
      string_of_int config.corpus_seed;
      float_bits config.violation_rate;
    ]

let take n xs = List.filteri (fun i _ -> i < n) xs
let drop n xs = List.filteri (fun i _ -> i >= n) xs

(* A span that also accounts the Parallel chunks scheduled inside it,
   mirroring what [Stage.run] records for cached stages. *)
let spanned telemetry name f =
  Telemetry.with_span telemetry name (fun () ->
      let c0 = Parallel.chunks_scheduled () in
      let v = f () in
      Telemetry.count telemetry "parallel.chunks"
        (Parallel.chunks_scheduled () - c0);
      v)

(* Corpus generation: per-index PRNG streams make [generate ~count:n] a
   strict prefix of [generate ~count:m] for n < m, so a cached corpus
   shrinks from a larger entry or extends incrementally. *)
let corpus_stage config =
  let n = config.corpus_size in
  let generate ~lo ~hi =
    Generator.generate_range ~provider:config.provider
      ~violation_rate:config.violation_rate ~jobs:config.jobs
      ~seed:config.corpus_seed ~lo ~hi ()
  in
  Stage.sized ~name:"corpus" ~key:(corpus_key config) ~size:n
    ~artifact:Generator.projects_artifact
    ~shrink:(fun ~larger:_ ps -> take n ps)
    ~extend:(fun ~cached prefix -> prefix @ generate ~lo:cached ~hi:n)
    (fun ~jobs:_ -> generate ~lo:0 ~hi:n)

let cached_corpus ?cache ?telemetry config =
  Stage.run ?cache ?telemetry ~jobs:config.jobs (corpus_stage config)

(* KB statistics over the materialized corpus: the raw monoid counts
   are the cached artifact (load exact size, or merge a count delta
   over the tail programs into the largest cached prefix); [finalize]
   derives the canonical KB from whatever the runner returns. *)
let kb_stage config programs =
  let jobs = config.jobs in
  let n = List.length programs in
  Stage.sized ~name:"kb" ~key:(corpus_key config) ~size:n
    ~artifact:Kb.stats_artifact
    ~extend:(fun ~cached stats ->
      Kb.merge_stats stats (Kb.stats_of_projects ~jobs (drop cached programs)))
    (fun ~jobs:_ -> Kb.stats_of_projects ~jobs programs)

let cached_kb ?cache ?telemetry config programs =
  Kb.finalize ~provider:config.provider
    (Stage.run ?cache ?telemetry ~jobs:config.jobs (kb_stage config programs))

let prepare ?cache ?(telemetry = Telemetry.null) config =
  let jobs = config.jobs in
  let projects = cached_corpus ?cache ~telemetry config in
  let programs =
    spanned telemetry "materialize" (fun () ->
        let programs =
          Miner.materialize ~provider:config.provider ~jobs
            (List.map (fun p -> p.Generator.program) projects)
        in
        Telemetry.count telemetry "materialize.programs" (List.length programs);
        programs)
  in
  let corpus =
    List.map2 (fun p prog -> (p.Generator.pname, prog)) projects programs
  in
  let kb = cached_kb ?cache ~telemetry config programs in
  (projects, corpus, kb, programs)

(* The materialized-corpus identity: corpus content key plus size. *)
let tables_key config =
  Codec.fingerprint [ corpus_key config; string_of_int config.corpus_size ]

(* The mined-candidate-set address — shared verbatim by the monolithic
   and streamed paths so their final artifacts interoperate. *)
let mine_key config =
  Codec.fingerprint
    [
      tables_key config;
      string_of_bool config.mining.Miner.use_kb;
      string_of_int config.mining.Miner.min_support;
    ]

(* Filter + oracle over mined candidates — pure compute shared by the
   monolithic and streamed paths. *)
let refine ?(telemetry = Telemetry.null) config mined =
  let filtered =
    spanned telemetry "filter" (fun () ->
        let f = Filter.run ~thresholds:config.thresholds mined in
        Telemetry.count telemetry "filter.kept" (List.length f.Filter.kept);
        Telemetry.count telemetry "filter.removed"
          (List.length f.Filter.removed_confidence
          + List.length f.Filter.removed_lift);
        Telemetry.count telemetry "filter.interpolation_queue"
          (List.length f.Filter.interpolation_queue);
        f)
  in
  let refined, rejected, candidates =
    spanned telemetry "oracle" (fun () ->
        let oracle =
          Llm.create ~provider:config.provider
            ~error_rate:config.oracle_error_rate config.oracle_seed
        in
        let refined, rejected =
          List.fold_left
            (fun (refined, rejected) candidate ->
              match Llm.interpolate oracle candidate with
              | Llm.Refined check -> (check :: refined, rejected)
              | Llm.Unsupported -> (refined, rejected + 1))
            ([], 0) filtered.Filter.interpolation_queue
        in
        let candidates =
          dedup_checks
            (List.map
               (fun c -> c.Candidate.check)
               filtered.Filter.kept
            @ List.rev refined)
        in
        Telemetry.count telemetry "oracle.refined" (List.length refined);
        Telemetry.count telemetry "oracle.rejected" rejected;
        Telemetry.count telemetry "oracle.candidates" (List.length candidates);
        (List.rev refined, rejected, candidates))
  in
  (filtered, refined, rejected, candidates)

let mine_phase ?cache ?(telemetry = Telemetry.null) config kb programs =
  let mined_stage =
    Stage.keyed ~name:"mine" ~key:(mine_key config)
      ~artifact:Candidate.list_artifact
      (fun ~jobs:_ ->
        Miner.mine ~provider:config.provider ~config:config.mining ~telemetry
          ~jobs:config.jobs
          ?tables:(Option.map (fun c -> (c, tables_key config)) cache)
          kb programs)
  in
  let mined = Stage.run ?cache ~telemetry ~jobs:config.jobs mined_stage in
  let filtered, refined, rejected, candidates = refine ~telemetry config mined in
  (mined, filtered, refined, rejected, candidates)

(* Engine accounting attributed to the enclosing span as counter
   deltas, so validate and counterexample each report their own
   deployments/retries/faults in the trace. *)
let engine_delta telemetry engine f =
  let before = Engine_stats.counters (Engine.stats engine) in
  let v = f () in
  let after = Engine_stats.counters (Engine.stats engine) in
  List.iter2
    (fun (k, b) (k', a) ->
      assert (String.equal k k');
      Telemetry.count telemetry k (a - b))
    before after;
  v

let empty_validation =
  {
    Scheduler.validated = [];
    falsified = [];
    iterations = [];
    deployments = 0;
  }

let mine_only ?(config = default_config) ?telemetry () =
  let cache = cache_of config in
  let projects, corpus, kb, programs = prepare ?cache ?telemetry config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase ?cache ?telemetry config kb programs
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation = empty_validation;
    final_checks = [];
    counterexample_fps = [];
    engine_stats = Engine_stats.empty;
    cache_stats = cache_stats_of cache;
  }

(* ---- streaming shard pipeline --------------------------------------
   The bounded-memory counterpart of [mine_only]: projects are
   generated, materialized and counted shard by shard, never held whole
   in memory. Two passes over the same shard stream:

     pass 1 ("kb")    fold per-shard KB stats; finalize once at the end.
     pass 2 ("mine")  fold per-shard miner tables (intra + indexed +
                      inter) with the finalized KB fixed — the inter
                      family's reserved names are a pure function of
                      that KB, so they cannot be derived mid-stream.

   Both passes run as [Stage.streamed] at the SAME cache addresses as
   the monolithic "kb" and "mine" stages (the artifacts are
   byte-identical by the monoid contract), so a monolithic cache warms
   a streamed run and vice versa. Per-shard checkpoints live under
   their own stage namespaces ("shard-kb"/"shard-mine"): a killed run
   resumes by re-counting only unfinished shards. Peak memory is one
   shard of materialized programs plus the accumulated tables,
   independent of [corpus_size]. *)

type mproc = {
  m_workers : int;
  m_claimed : int;
  m_built : int;
  m_stolen : int;
  m_waits : int;
  m_failed : int;
}

let no_fleet =
  {
    m_workers = 0;
    m_claimed = 0;
    m_built = 0;
    m_stolen = 0;
    m_waits = 0;
    m_failed = 0;
  }

type streamed = {
  s_config : config;
  s_shard_size : int;
  s_kb : Kb.t;
  s_mined : Candidate.t list;
  s_filtered : Filter.outcome;
  s_llm_refined : Check.t list;
  s_llm_rejected : int;
  s_candidates : Check.t list;
  s_kb_fold : Shard_stream.outcome;
  s_mine_fold : Shard_stream.outcome;
  s_kb_mproc : mproc;
  s_mine_mproc : mproc;
  s_cache_stats : Cache.stats;
}

(* One shard of projects, generated and materialized on demand. The
   per-index PRNG streams make a shard's content independent of every
   other shard, so a checkpointed shard stays valid as the corpus
   grows. [Defaults.effective] is idempotent, so this single
   materialization equals the monolithic path's. *)
let shard_load config ~lo ~hi =
  Miner.materialize ~provider:config.provider ~jobs:config.jobs
    (List.map
       (fun p -> p.Generator.program)
       (Generator.generate_range ~provider:config.provider
          ~violation_rate:config.violation_rate ~jobs:config.jobs
          ~seed:config.corpus_seed ~lo ~hi ()))

(* Miner-table checkpoints additionally key on the whole-corpus
   identity (the KB the counts consult) and [use_kb] — but not
   [min_support], which only gates emission. *)
let shard_mine_key config =
  Codec.fingerprint
    [ tables_key config; string_of_bool config.mining.Miner.use_kb ]

(* ---- multi-process worker fleet ------------------------------------
   [mine --workers N] forks N children (a re-exec of the current
   binary in the hidden worker mode, argv supplied by the caller) per
   streamed pass. Children never merge and never talk to each other:
   they race to claim and checkpoint shards into the shared cache dir
   ({!Shard_stream.fold_worker}), print one summary line on stdout and
   exit. The parent then runs the ordinary resumed fold — the merge
   pass — which also rebuilds inline any shard a crashed worker left
   unfinished, so artifacts are byte-identical to [--workers 1]
   regardless of worker fates. *)

let worker_summary (o : Shard_stream.worker_outcome) =
  Printf.sprintf "mproc-worker claimed=%d built=%d stolen=%d waits=%d"
    o.Shard_stream.w_claimed o.Shard_stream.w_built o.Shard_stream.w_stolen
    o.Shard_stream.w_waits

let parse_worker_summary line =
  match
    Scanf.sscanf line "mproc-worker claimed=%d built=%d stolen=%d waits=%d"
      (fun c b s w ->
        {
          Shard_stream.w_claimed = c;
          w_built = b;
          w_stolen = s;
          w_waits = w;
        })
  with
  | outcome -> Some outcome
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let run_fleet ~telemetry ~pass ~workers ~worker_command =
  match worker_command with
  | Some cmd when workers > 1 ->
      let argv = cmd pass in
      Telemetry.with_span telemetry ("mproc." ^ pass) (fun () ->
          let clock =
            if Telemetry.deterministic telemetry then None
            else Some Unix.gettimeofday
          in
          let t0 = Option.map (fun c -> c ()) clock in
          let children =
            List.init workers (fun _ ->
                let r, w = Unix.pipe () in
                let pid =
                  Unix.create_process argv.(0) argv Unix.stdin w Unix.stderr
                in
                Unix.close w;
                (pid, r))
          in
          let fleet =
            List.fold_left
              (fun (i, acc) (pid, r) ->
                let ic = Unix.in_channel_of_descr r in
                let rec lines acc =
                  match input_line ic with
                  | line -> lines (line :: acc)
                  | exception End_of_file -> acc
                in
                let summary = List.find_map parse_worker_summary (lines []) in
                close_in_noerr ic;
                let status = snd (Unix.waitpid [] pid) in
                (match (clock, t0) with
                | Some c, Some t0 ->
                    Telemetry.note telemetry
                      (Printf.sprintf "worker%d.wall_seconds" i)
                      (Printf.sprintf "%.3f" (c () -. t0))
                | _ -> ());
                let acc =
                  match (status, summary) with
                  | Unix.WEXITED 0, Some o ->
                      {
                        acc with
                        m_claimed = acc.m_claimed + o.Shard_stream.w_claimed;
                        m_built = acc.m_built + o.Shard_stream.w_built;
                        m_stolen = acc.m_stolen + o.Shard_stream.w_stolen;
                        m_waits = acc.m_waits + o.Shard_stream.w_waits;
                      }
                  | _ ->
                      (* A dead or mute worker costs nothing but its
                         unfinished shards, which the merge fold
                         re-mines. *)
                      { acc with m_failed = acc.m_failed + 1 }
                in
                (i + 1, acc))
              (0, { no_fleet with m_workers = workers })
              children
            |> snd
          in
          Telemetry.count telemetry "mproc.workers" fleet.m_workers;
          Telemetry.count telemetry "mproc.claimed" fleet.m_claimed;
          Telemetry.count telemetry "mproc.built" fleet.m_built;
          Telemetry.count telemetry "mproc.stolen" fleet.m_stolen;
          Telemetry.count telemetry "mproc.waits" fleet.m_waits;
          if fleet.m_failed > 0 then
            Telemetry.count telemetry "mproc.failed" fleet.m_failed;
          fleet)
  | _ -> no_fleet

let mine_worker ?(config = default_config) ?telemetry ?stale_after ~shard_size
    ~pass () =
  let telemetry = Option.value telemetry ~default:Telemetry.null in
  let cache =
    match cache_of config with
    | Some c -> c
    | None -> invalid_arg "mine_worker: a cache directory is required"
  in
  let jobs = config.jobs in
  let n = config.corpus_size in
  let gc_before = Gc.get () in
  Gc.set { gc_before with Gc.space_overhead = 40 };
  Fun.protect ~finally:(fun () -> Gc.set gc_before) @@ fun () ->
  let load = shard_load config in
  match pass with
  | `Kb ->
      Shard_stream.fold_worker ~cache ~telemetry ?stale_after ~stage:"shard-kb"
        ~key:(corpus_key config) ~write:Kb.write_stats ~load
        ~count:(Kb.stats_of_projects ~jobs) ~total:n ~shard_size ()
  | `Mine ->
      (* The mine pass needs the finalized whole-corpus KB. By the time
         the parent spawns mine workers the KB pass is complete, so
         either the final sized artifact or the full checkpoint set is
         in the shared cache — folding the latter re-counts nothing. *)
      let kb =
        match
          Cache.find ~size:n cache ~stage:"kb" ~key:(corpus_key config)
            Kb.read_stats
        with
        | Some stats -> Kb.finalize ~provider:config.provider stats
        | None ->
            let stats, _ =
              Shard_stream.fold ~cache ~telemetry ~stage:"shard-kb"
                ~key:(corpus_key config) ~write:Kb.write_stats
                ~read:Kb.read_stats ~load
                ~count:(Kb.stats_of_projects ~jobs)
                ~merge:Kb.merge_stats
                ~init:(Kb.stats_of_projects ~jobs [])
                ~total:n ~shard_size ()
            in
            Kb.finalize ~provider:config.provider stats
      in
      Shard_stream.fold_worker ~cache ~telemetry ?stale_after
        ~stage:"shard-mine" ~key:(shard_mine_key config)
        ~write:Miner.write_tables ~load
        ~count:(Miner.count_tables ~provider:config.provider ~jobs config.mining kb)
        ~total:n ~shard_size ()

let mine_streamed ?(config = default_config) ?telemetry ?(workers = 1)
    ?worker_command ?progress ~shard_size () =
  let telemetry = Option.value telemetry ~default:Telemetry.null in
  let cache = cache_of config in
  let jobs = config.jobs in
  let n = config.corpus_size in
  (* Bounded-memory mode trades a little GC CPU for a flat footprint:
     shard churn under the default pacing (space_overhead 120) lets the
     heap balloon to several times the live set, which is exactly the
     slack streaming exists to avoid. Pacing never affects results,
     only when collections happen. Restored on exit. *)
  let gc_before = Gc.get () in
  Gc.set { gc_before with Gc.space_overhead = 40 };
  Fun.protect ~finally:(fun () -> Gc.set gc_before) @@ fun () ->
  let load = shard_load config in
  let on_shard pass =
    Option.map
      (fun f ~index ~shards ~built -> f ~pass ~index ~shards ~built)
      progress
  in
  let kb_fold = ref Shard_stream.no_shards in
  let kb_mproc = ref no_fleet in
  let kb_stats_stage =
    (* Shard checkpoints key on corpus identity + range only (no total
       size): a shard counted during a 10k-project run resumes a later
       100k-project run unchanged. *)
    Stage.streamed ~name:"kb" ~key:(corpus_key config) ~size:n
      ~artifact:Kb.stats_artifact
      (fun ~cache ~telemetry ~jobs ->
        (* Fleet first (workers checkpoint every shard into the shared
           cache), then the resumed fold below merges them in shard
           order — and rebuilds any shard the fleet left behind. A warm
           final-artifact hit never reaches this point, so no workers
           spawn on warm runs. *)
        kb_mproc :=
          run_fleet ~telemetry ~pass:"kb" ~workers ~worker_command;
        let stats, outcome =
          Shard_stream.fold ?cache ~telemetry ?on_shard:(on_shard "kb")
            ~stage:"shard-kb" ~key:(corpus_key config) ~write:Kb.write_stats
            ~read:Kb.read_stats ~load
            ~count:(Kb.stats_of_projects ~jobs)
            ~merge:Kb.merge_stats
            ~init:(Kb.stats_of_projects ~jobs [])
            ~total:n ~shard_size ()
        in
        kb_fold := outcome;
        stats)
  in
  let kb =
    Kb.finalize ~provider:config.provider
      (Stage.run ?cache ~telemetry ~jobs kb_stats_stage)
  in
  let mine_fold = ref Shard_stream.no_shards in
  let mine_mproc = ref no_fleet in
  let mined_stage =
    Stage.streamed ~name:"mine" ~key:(mine_key config)
      ~artifact:Candidate.list_artifact
      (fun ~cache ~telemetry ~jobs ->
        mine_mproc :=
          run_fleet ~telemetry ~pass:"mine" ~workers ~worker_command;
        let tables, outcome =
          Shard_stream.fold ?cache ~telemetry ?on_shard:(on_shard "mine")
            ~stage:"shard-mine" ~key:(shard_mine_key config)
            ~write:Miner.write_tables ~read:Miner.read_tables ~load
            ~count:(Miner.count_tables ~provider:config.provider ~jobs config.mining kb)
            ~merge:Miner.merge_tables
            ~init:(Miner.count_tables ~provider:config.provider ~jobs config.mining kb [])
            ~total:n ~shard_size ()
        in
        mine_fold := outcome;
        Miner.emit_tables config.mining kb tables)
  in
  let mined = Stage.run ?cache ~telemetry ~jobs mined_stage in
  let filtered, llm_refined, llm_rejected, candidates =
    refine ~telemetry config mined
  in
  {
    s_config = config;
    s_shard_size = shard_size;
    s_kb = kb;
    s_mined = mined;
    s_filtered = filtered;
    s_llm_refined = llm_refined;
    s_llm_rejected = llm_rejected;
    s_candidates = candidates;
    s_kb_fold = !kb_fold;
    s_mine_fold = !mine_fold;
    s_kb_mproc = !kb_mproc;
    s_mine_mproc = !mine_mproc;
    s_cache_stats = cache_stats_of cache;
  }

let run ?(config = default_config) ?telemetry () =
  let cache = cache_of config in
  let telemetry = Option.value telemetry ~default:Telemetry.null in
  let projects, corpus, kb, programs = prepare ?cache ~telemetry config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase ?cache ~telemetry config kb programs
  in
  let engine =
    Engine.create ~provider:config.provider ~config:config.engine ()
  in
  let deploy = Engine.oracle engine in
  let deploy_batch = Engine.oracle_batch ~jobs:config.jobs engine in
  let validation =
    spanned telemetry "validate" (fun () ->
        engine_delta telemetry engine (fun () ->
            Scheduler.run ~config:config.scheduler ~telemetry ~jobs:config.jobs
              ~deploy_batch ~provider:config.provider ~kb ~corpus ~deploy
              candidates))
  in
  let final_checks, counterexample_fps =
    spanned telemetry "counterexample" (fun () ->
        engine_delta telemetry engine (fun () ->
            let kept, exposed =
              Scheduler.counterexample_pass ~jobs:config.jobs
                ~provider:config.provider ~corpus ~deploy
                validation.Scheduler.validated
            in
            Telemetry.count telemetry "counterexample.kept" (List.length kept);
            Telemetry.count telemetry "counterexample.exposed_fps"
              (List.length exposed);
            (kept, exposed)))
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation;
    final_checks;
    counterexample_fps;
    engine_stats = Engine.stats engine;
    cache_stats = cache_stats_of cache;
  }

type violation_report = {
  project : string;
  check : Check.t;
  resources : Zodiac_iac.Resource.id list;
}

let scan ~provider ~checks ~corpus =
  let defaults = Arm.defaults provider in
  List.concat_map
    (fun (project, prog) ->
      let graph = Graph.build prog in
      List.concat_map
        (fun check ->
          List.map
            (fun assignment ->
              { project; check; resources = List.map snd assignment })
            (Eval.violations ~defaults graph check))
        checks)
    corpus
