module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Filter = Zodiac_mining.Filter
module Candidate = Zodiac_mining.Candidate
module Llm = Zodiac_oracle.Llm
module Scheduler = Zodiac_validation.Scheduler
module Arm = Zodiac_cloud.Arm
module Engine = Zodiac_engine.Engine
module Engine_stats = Zodiac_engine.Stats
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Graph = Zodiac_iac.Graph
module Program = Zodiac_iac.Program
module Parallel = Zodiac_util.Parallel
module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec

type config = {
  corpus_seed : int;
  corpus_size : int;
  violation_rate : float;
  oracle_seed : int;
  oracle_error_rate : float;
  jobs : int;
  cache_dir : string option;
  mining : Miner.config;
  thresholds : Filter.thresholds;
  scheduler : Scheduler.config;
  engine : Engine.config;
}

let default_config =
  {
    corpus_seed = 20240704;
    corpus_size = 1200;
    violation_rate = 0.04;
    oracle_seed = 91;
    oracle_error_rate = 0.05;
    jobs = Parallel.recommended_jobs ();
    cache_dir = None;
    mining = Miner.default_config;
    thresholds = Filter.default_thresholds;
    scheduler = Scheduler.default_config;
    engine = Engine.default_config;
  }

let quick_config = { default_config with corpus_size = 300 }

type artifacts = {
  config : config;
  projects : Generator.project list;
  corpus : (string * Program.t) list;
  kb : Kb.t;
  mined : Candidate.t list;
  filtered : Filter.outcome;
  llm_refined : Check.t list;
  llm_rejected : int;
  candidates : Check.t list;
  validation : Scheduler.result;
  final_checks : Check.t list;
  counterexample_fps : Check.t list;
  engine_stats : Engine_stats.snapshot;
  cache_stats : Cache.stats;
}

let deploy prog = Arm.success (Arm.deploy prog)

let dedup_checks checks =
  let seen = Hashtbl.create 128 in
  List.filter
    (fun (c : Check.t) ->
      if Hashtbl.mem seen c.Check.cid then false
      else begin
        Hashtbl.replace seen c.Check.cid ();
        true
      end)
    checks

(* ---- warm-start cache ----------------------------------------------
   Stage outputs are keyed by a fingerprint of everything they depend
   on; sized entries (corpus, KB stats) additionally record the corpus
   size so a warm run can load the largest cached prefix and extend it
   incrementally (projects are generated from independent per-index PRNG
   streams and the KB count tables merge as exact monoids, so the
   extended artifacts are byte-identical to a cold rebuild). Stale codec
   versions and corrupted entries decode as misses, falling back to the
   cold path. *)

let cache_of config = Option.map (fun dir -> Cache.create ~dir ()) config.cache_dir

let zero_cache_stats = { Cache.hits = 0; misses = 0; writes = 0 }

let cache_stats_of = function
  | Some c -> Cache.stats c
  | None -> zero_cache_stats

let float_bits f = Int64.to_string (Int64.bits_of_float f)

(* Everything the corpus content depends on except its size ([jobs] is
   artifact-invariant by the Parallel contract). *)
let corpus_key config =
  Codec.fingerprint
    [ "corpus"; string_of_int config.corpus_seed; float_bits config.violation_rate ]

let write_projects b ps = Codec.write_list Generator.write_project b ps
let read_projects s = Codec.read_list Generator.read_project s

let take n xs = List.filteri (fun i _ -> i < n) xs
let drop n xs = List.filteri (fun i _ -> i >= n) xs

let cached_corpus ?cache config =
  let generate ~lo ~hi =
    Generator.generate_range ~violation_rate:config.violation_rate
      ~jobs:config.jobs ~seed:config.corpus_seed ~lo ~hi ()
  in
  let n = config.corpus_size in
  match cache with
  | None -> generate ~lo:0 ~hi:n
  | Some c -> (
      let stage = "corpus" in
      let key = corpus_key config in
      match Cache.find c ~stage ~key ~size:n read_projects with
      | Some ps -> ps
      | None -> (
          let sizes = Cache.sizes c ~stage ~key in
          (* a larger cached corpus contains this one as its prefix;
             no point storing what is derivable from an existing entry *)
          let from_larger =
            List.filter (fun m -> m > n) sizes
            |> List.find_map (fun m ->
                   Cache.find c ~stage ~key ~size:m read_projects)
          in
          match from_larger with
          | Some ps -> take n ps
          | None ->
              (* otherwise extend the largest cached prefix *)
              let base =
                List.filter (fun m -> m < n) sizes
                |> List.rev
                |> List.find_map (fun m ->
                       Option.map
                         (fun ps -> (m, ps))
                         (Cache.find c ~stage ~key ~size:m read_projects))
              in
              let ps =
                match base with
                | Some (m, prefix) -> prefix @ generate ~lo:m ~hi:n
                | None -> generate ~lo:0 ~hi:n
              in
              Cache.store c ~stage ~key ~size:n (fun b -> write_projects b ps);
              ps))

(* KB statistics over the materialized corpus: load exact size, or merge
   a monoid count delta over the tail programs into the largest cached
   prefix instead of rebuilding. *)
let cached_kb ?cache config programs =
  let jobs = config.jobs in
  match cache with
  | None -> Kb.build ~jobs ~projects:programs ()
  | Some c -> (
      let stage = "kb-stats" in
      let key = corpus_key config in
      let n = List.length programs in
      match Cache.find c ~stage ~key ~size:n Kb.read_stats with
      | Some stats -> Kb.finalize stats
      | None ->
          let base =
            List.filter (fun m -> m < n) (Cache.sizes c ~stage ~key)
            |> List.rev
            |> List.find_map (fun m ->
                   Option.map
                     (fun stats -> (m, stats))
                     (Cache.find c ~stage ~key ~size:m Kb.read_stats))
          in
          let stats =
            match base with
            | Some (m, stats) ->
                Kb.merge_stats stats (Kb.stats_of_projects ~jobs (drop m programs))
            | None -> Kb.stats_of_projects ~jobs programs
          in
          Cache.store c ~stage ~key ~size:n (fun b -> Kb.write_stats b stats);
          Kb.finalize stats)

let prepare ?cache config =
  let jobs = config.jobs in
  let projects = cached_corpus ?cache config in
  let programs =
    Miner.materialize ~jobs (List.map (fun p -> p.Generator.program) projects)
  in
  let corpus =
    List.map2 (fun p prog -> (p.Generator.pname, prog)) projects programs
  in
  let kb = cached_kb ?cache config programs in
  (projects, corpus, kb, programs)

let mine_phase ?cache config kb programs =
  let tables_key config =
    Codec.fingerprint [ corpus_key config; string_of_int config.corpus_size ]
  in
  let mine () =
    Miner.mine ~config:config.mining ~jobs:config.jobs
      ?tables:(Option.map (fun c -> (c, tables_key config)) cache)
      kb programs
  in
  let mined =
    match cache with
    | None -> mine ()
    | Some c -> (
        let stage = "mined" in
        let key =
          Codec.fingerprint
            [
              tables_key config;
              string_of_bool config.mining.Miner.use_kb;
              string_of_int config.mining.Miner.min_support;
            ]
        in
        match Cache.find c ~stage ~key (Codec.read_list Candidate.read) with
        | Some cs -> cs
        | None ->
            let cs = mine () in
            Cache.store c ~stage ~key (fun b ->
                Codec.write_list Candidate.write b cs);
            cs)
  in
  let filtered = Filter.run ~thresholds:config.thresholds mined in
  let oracle = Llm.create ~error_rate:config.oracle_error_rate config.oracle_seed in
  let refined, rejected =
    List.fold_left
      (fun (refined, rejected) candidate ->
        match Llm.interpolate oracle candidate with
        | Llm.Refined check -> (check :: refined, rejected)
        | Llm.Unsupported -> (refined, rejected + 1))
      ([], 0) filtered.Filter.interpolation_queue
  in
  let candidates =
    dedup_checks
      (List.map (fun c -> c.Candidate.check) filtered.Filter.kept @ List.rev refined)
  in
  (mined, filtered, List.rev refined, rejected, candidates)

let empty_validation =
  {
    Scheduler.validated = [];
    falsified = [];
    iterations = [];
    deployments = 0;
  }

let mine_only ?(config = default_config) () =
  let cache = cache_of config in
  let projects, corpus, kb, programs = prepare ?cache config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase ?cache config kb programs
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation = empty_validation;
    final_checks = [];
    counterexample_fps = [];
    engine_stats = Engine_stats.empty;
    cache_stats = cache_stats_of cache;
  }

let run ?(config = default_config) () =
  let cache = cache_of config in
  let projects, corpus, kb, programs = prepare ?cache config in
  let mined, filtered, llm_refined, llm_rejected, candidates =
    mine_phase ?cache config kb programs
  in
  let engine = Engine.create ~config:config.engine () in
  let deploy = Engine.oracle engine in
  let deploy_batch = Engine.oracle_batch ~jobs:config.jobs engine in
  let validation =
    Scheduler.run ~config:config.scheduler ~jobs:config.jobs ~deploy_batch ~kb
      ~corpus ~deploy candidates
  in
  let final_checks, counterexample_fps =
    Scheduler.counterexample_pass ~jobs:config.jobs ~corpus ~deploy
      validation.Scheduler.validated
  in
  {
    config;
    projects;
    corpus;
    kb;
    mined;
    filtered;
    llm_refined;
    llm_rejected;
    candidates;
    validation;
    final_checks;
    counterexample_fps;
    engine_stats = Engine.stats engine;
    cache_stats = cache_stats_of cache;
  }

type violation_report = {
  project : string;
  check : Check.t;
  resources : Zodiac_iac.Resource.id list;
}

let scan ~checks ~corpus =
  let defaults = Arm.defaults in
  List.concat_map
    (fun (project, prog) ->
      let graph = Graph.build prog in
      List.concat_map
        (fun check ->
          List.map
            (fun assignment ->
              { project; check; resources = List.map snd assignment })
            (Eval.violations ~defaults graph check))
        checks)
    corpus
