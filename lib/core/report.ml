module Check = Zodiac_spec.Check
module Spec_printer = Zodiac_spec.Spec_printer
module Filter = Zodiac_mining.Filter
module Scheduler = Zodiac_validation.Scheduler
module Tablefmt = Zodiac_util.Tablefmt
module Telemetry = Zodiac_util.Telemetry
module Cache = Zodiac_util.Cache
module Rss = Zodiac_util.Rss
module Shard_stream = Zodiac_util.Shard_stream

let mining_summary (a : Pipeline.artifacts) =
  let f = a.Pipeline.filtered in
  String.concat "\n"
    [
      Printf.sprintf "corpus: %d projects, %d resources"
        (List.length a.Pipeline.projects)
        (List.fold_left
           (fun acc (_, p) -> acc + Zodiac_iac.Program.size p)
           0 a.Pipeline.corpus);
      Printf.sprintf "knowledge base: %d attribute entries, %d connection kinds"
        (Zodiac_kb.Kb.size a.Pipeline.kb)
        (List.length (Zodiac_kb.Kb.conn_kinds a.Pipeline.kb));
      Printf.sprintf "hypothesized checks: %d" (List.length a.Pipeline.mined);
      Printf.sprintf "  removed by confidence: %d"
        (List.length f.Filter.removed_confidence);
      Printf.sprintf "  removed by lift:       %d" (List.length f.Filter.removed_lift);
      Printf.sprintf "  kept after filtering:  %d" (List.length f.Filter.kept);
      Printf.sprintf "  interpolation queue:   %d (LLM refined %d, rejected %d)"
        (List.length f.Filter.interpolation_queue)
        (List.length a.Pipeline.llm_refined)
        a.Pipeline.llm_rejected;
      Printf.sprintf "candidates entering validation: %d"
        (List.length a.Pipeline.candidates);
    ]

let validation_summary (a : Pipeline.artifacts) =
  let v = a.Pipeline.validation in
  let iteration_lines =
    List.map
      (fun (it : Scheduler.iteration) ->
        Printf.sprintf
          "  iter %d: fp(deployable)=%d fp(unsat)=%d fp(no-instance)=%d tp(single)=%d tp(group)=%d remaining=%d"
          it.Scheduler.iter it.Scheduler.fp_deployable it.Scheduler.fp_unsat
          it.Scheduler.fp_no_instance it.Scheduler.tp_single it.Scheduler.tp_group
          it.Scheduler.remaining)
      v.Scheduler.iterations
  in
  String.concat "\n"
    ([
       Printf.sprintf "validated checks: %d" (List.length v.Scheduler.validated);
       Printf.sprintf "falsified candidates: %d" (List.length v.Scheduler.falsified);
       Printf.sprintf "cloud deployments: %d" v.Scheduler.deployments;
       Printf.sprintf "counterexample pass: kept %d, exposed %d false positives"
         (List.length a.Pipeline.final_checks)
         (List.length a.Pipeline.counterexample_fps);
     ]
    @ iteration_lines)

let category_breakdown checks =
  let count cat =
    List.length (List.filter (fun c -> Check.category c = cat) checks)
  in
  [
    ("intra-resource", count Check.Intra);
    ("inter w/o agg", count Check.Inter_no_agg);
    ("inter w/ agg", count Check.Inter_agg);
    ("interpolation", count Check.Interpolated);
  ]

let checks_listing ?(limit = 20) checks =
  let shown = List.filteri (fun i _ -> i < limit) checks in
  String.concat "\n"
    (List.map (fun c -> "  " ^ Spec_printer.describe c) shown)
  ^
  if List.length checks > limit then
    Printf.sprintf "\n  ... and %d more" (List.length checks - limit)
  else ""

let engine_summary (a : Pipeline.artifacts) =
  Zodiac_engine.Stats.summary a.Pipeline.engine_stats

(* Failed writes are rare enough (read-only dir, disk full) that the
   healthy-run line keeps its historical shape; the suffix appears only
   when something was actually lost. *)
let write_failure_suffix (s : Cache.stats) =
  if s.Cache.write_failures = 0 then ""
  else Printf.sprintf " / %d write failures" s.Cache.write_failures

let cache_summary (a : Pipeline.artifacts) =
  let s = a.Pipeline.cache_stats in
  match a.Pipeline.config.Pipeline.cache_dir with
  | None -> "warm-start cache: off (--cache-dir to enable)"
  | Some dir ->
      Printf.sprintf "warm-start cache (%s): %d hits / %d misses / %d writes%s"
        dir s.Cache.hits s.Cache.misses s.Cache.writes
        (write_failure_suffix s)

let stage_summary telemetry =
  if Telemetry.spans telemetry = [] then None
  else Some (Telemetry.summary_table telemetry)

(* Read at render time only: memory accounting never enters telemetry
   counters (which are compared for determinism) or any artifact. *)
let rss_summary () =
  match Rss.peak_rss_kb () with
  | None -> []
  | Some kb -> [ Printf.sprintf "peak RSS: %.1f MB" (float_of_int kb /. 1024.) ]

let stats_section ?telemetry (a : Pipeline.artifacts) =
  String.concat "\n"
    ([ Tablefmt.section "Run statistics"; cache_summary a ]
    @ (match Option.bind telemetry stage_summary with
      | Some table -> [ table ]
      | None -> [])
    @ [ engine_summary a ]
    @ rss_summary ())

let streamed_summary (s : Pipeline.streamed) =
  let f = s.Pipeline.s_filtered in
  let fold_line name (o : Shard_stream.outcome) =
    if o.Shard_stream.shards = 0 then
      Printf.sprintf "  %s pass: final artifact cached (no shards folded)" name
    else
      Printf.sprintf "  %s pass: %d shards (%d resumed from checkpoints, %d built)"
        name o.Shard_stream.shards o.Shard_stream.resumed o.Shard_stream.built
  in
  (* Worker-fleet accounting: a distinct prefix ("mproc kb:", never
     "kb pass:") so line-oriented report parsers keep matching the fold
     lines they matched before multi-process mining existed. *)
  let mproc_lines =
    List.concat_map
      (fun (name, (m : Pipeline.mproc)) ->
        if m.Pipeline.m_workers = 0 then []
        else
          [
            Printf.sprintf
              "  mproc %s: workers=%d claimed=%d built=%d stolen=%d%s" name
              m.Pipeline.m_workers m.Pipeline.m_claimed m.Pipeline.m_built
              m.Pipeline.m_stolen
              (if m.Pipeline.m_failed = 0 then ""
               else Printf.sprintf " failed=%d" m.Pipeline.m_failed);
          ])
      [ ("kb", s.Pipeline.s_kb_mproc); ("mine", s.Pipeline.s_mine_mproc) ]
  in
  String.concat "\n"
    ([
       Printf.sprintf "streamed corpus: %d projects in shards of %d"
         s.Pipeline.s_config.Pipeline.corpus_size
         (let k = s.Pipeline.s_shard_size in
          if k <= 0 then s.Pipeline.s_config.Pipeline.corpus_size else k);
       fold_line "kb" s.Pipeline.s_kb_fold;
       fold_line "mine" s.Pipeline.s_mine_fold;
     ]
    @ mproc_lines
    @ [
       Printf.sprintf "knowledge base: %d attribute entries, %d connection kinds"
         (Zodiac_kb.Kb.size s.Pipeline.s_kb)
         (List.length (Zodiac_kb.Kb.conn_kinds s.Pipeline.s_kb));
       Printf.sprintf "hypothesized checks: %d" (List.length s.Pipeline.s_mined);
       Printf.sprintf "  removed by confidence: %d"
         (List.length f.Filter.removed_confidence);
       Printf.sprintf "  removed by lift:       %d" (List.length f.Filter.removed_lift);
       Printf.sprintf "  kept after filtering:  %d" (List.length f.Filter.kept);
       Printf.sprintf "  interpolation queue:   %d (LLM refined %d, rejected %d)"
         (List.length f.Filter.interpolation_queue)
         (List.length s.Pipeline.s_llm_refined)
         s.Pipeline.s_llm_rejected;
       Printf.sprintf "candidates entering validation: %d"
         (List.length s.Pipeline.s_candidates);
       (match s.Pipeline.s_config.Pipeline.cache_dir with
       | None -> "warm-start cache: off (--cache-dir to enable checkpointed resume)"
       | Some dir ->
           Printf.sprintf "warm-start cache (%s): %d hits / %d misses / %d writes%s"
             dir s.Pipeline.s_cache_stats.Cache.hits
             s.Pipeline.s_cache_stats.Cache.misses
             s.Pipeline.s_cache_stats.Cache.writes
             (write_failure_suffix s.Pipeline.s_cache_stats));
     ]
    @ rss_summary ())

let full ?telemetry a =
  String.concat "\n"
    [
      Tablefmt.section "Mining phase";
      mining_summary a;
      Tablefmt.section "Validation phase";
      validation_summary a;
      stats_section ?telemetry a;
      Tablefmt.section "Validated checks by category";
      Tablefmt.render
        ~header:[ "category"; "count" ]
        (List.map
           (fun (cat, n) -> [ cat; string_of_int n ])
           (category_breakdown a.Pipeline.final_checks));
      Tablefmt.section "Sample of validated checks";
      checks_listing a.Pipeline.final_checks;
    ]
