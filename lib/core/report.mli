(** Human-readable reporting over pipeline artifacts. *)

val mining_summary : Pipeline.artifacts -> string
(** The mining funnel: hypothesized, filtered, interpolated counts. *)

val validation_summary : Pipeline.artifacts -> string
(** Validated/falsified counts, per-iteration progress, deployments. *)

val category_breakdown : Zodiac_spec.Check.t list -> (string * int) list
(** Counts per check category (intra, inter w/o agg, ...). *)

val checks_listing : ?limit:int -> Zodiac_spec.Check.t list -> string
(** Pretty-printed checks, one per line. *)

val engine_summary : Pipeline.artifacts -> string
(** Deployment-engine accounting: attempts, retries, faults seen,
    cache hits, deployments saved. *)

val cache_summary : Pipeline.artifacts -> string
(** One line of warm-start cache accounting (or a hint that caching is
    off). *)

val stats_section : ?telemetry:Zodiac_util.Telemetry.t -> Pipeline.artifacts -> string
(** The "Run statistics" section: cache accounting, the per-stage
    telemetry table (when a recorder with spans is given), the engine
    summary and — on Linux — the process's peak RSS. Always rendered by
    {!full} — statistics are no longer gated behind [--verbose]. The
    RSS probe runs at render time only; it never enters telemetry
    counters or artifacts. *)

val streamed_summary : Pipeline.streamed -> string
(** The streamed-mining funnel: shard/resume accounting per pass, the
    mining funnel counts, cache accounting and peak RSS. *)

val full : ?telemetry:Zodiac_util.Telemetry.t -> Pipeline.artifacts -> string
