let appgw_assoc_buggy =
  {|
# Official usage example: associate a network interface with an
# application gateway's backend address pool.
resource "azurerm_virtual_network" "a" {
  name          = "example-network"
  location      = "eastus"
  address_space = ["10.0.0.0/16"]
}

resource "azurerm_subnet" "b" {
  name     = "frontend"
  vpc_name = azurerm_virtual_network.a.name
  cidr     = "10.0.1.0/24"
}

resource "azurerm_subnet" "c" {
  name     = "backend"
  vpc_name = azurerm_virtual_network.a.name
  cidr     = "10.0.2.0/24"
}

# Violation 1: the IP of an application gateway must use the Standard
# sku (and hence static allocation).
resource "azurerm_public_ip" "d" {
  name       = "example-pip"
  location   = "eastus"
  sku        = "Basic"
  allocation = "Dynamic"
}

resource "azurerm_application_gateway" "f" {
  name     = "example-appgw"
  location = "eastus"
  sku {
    name     = "Standard_v2"
    tier     = "Standard_v2"
    capacity = 2
  }
  gateway_ip_config {
    name      = "gw-ip-config"
    subnet_id = azurerm_subnet.b.id
  }
  frontend_ip_config {
    name         = "frontend-ip"
    public_ip_id = azurerm_public_ip.d.id
  }
  frontend_port {
    name = "http"
    port = 80
  }
  backend_address_pool {
    name = "pool-1"
  }
  backend_http_settings {
    name     = "http-settings"
    port     = 80
    protocol = "Http"
  }
  http_listener {
    name                    = "listener-1"
    frontend_ip_config_name = "frontend-ip"
    frontend_port_name      = "http"
    protocol                = "Http"
  }
  request_routing_rule {
    name                       = "rule-1"
    rule_type                  = "Basic"
    http_listener_name         = "listener-1"
    backend_address_pool_name  = "pool-1"
    backend_http_settings_name = "http-settings"
    priority                   = 9
  }
}

# Violation 2: the subnet of an application gateway is exclusive, but
# this NIC shares subnet "b" with the gateway.
resource "azurerm_network_interface" "e" {
  name     = "example-nic"
  location = "eastus"
  ip_config {
    name                  = "internal"
    subnet_id             = azurerm_subnet.b.id
    private_ip_allocation = "Dynamic"
  }
}
|}

let appgw_assoc_fixed =
  (* sku -> Standard/Static; NIC moved to the backend subnet "c";
     patched textually so the two sources stay in sync *)
  let b = appgw_assoc_buggy in
  let patch s (from, into) =
    let flen = String.length from in
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i > String.length s - flen then Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i flen = from then begin
        Buffer.add_string buf into;
        go (i + flen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  in
  List.fold_left patch b
    [
      ({|sku        = "Basic"|}, {|sku        = "Standard"|});
      ({|allocation = "Dynamic"
}|}, {|allocation = "Static"
}|});
      ({|subnet_id             = azurerm_subnet.b.id|},
       {|subnet_id             = azurerm_subnet.c.id|});
    ]

let mssql_db_buggy =
  {|
# Official usage example: a SQL server with a Basic database.
resource "azurerm_mssql_server" "s" {
  name                   = "example-sqlserver"
  location               = "westeurope"
  version                = "12.0"
  administrator_login    = "sqladmin"
  administrator_password = "Sup3rSecret!"
}

# Violation: Basic sku databases support at most 2 GB, but the example
# requests 250 GB.
resource "azurerm_mssql_database" "d" {
  name        = "example-db"
  server_id   = azurerm_mssql_server.s.id
  sku         = "Basic"
  max_size_gb = 250
}
|}

let mssql_db_fixed =
  let patch s (from, into) =
    let flen = String.length from in
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i > String.length s - flen then
        Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i flen = from then begin
        Buffer.add_string buf into;
        go (i + flen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  in
  patch mssql_db_buggy ({|max_size_gb = 250|}, {|max_size_gb = 2|})

let quickstart_vm =
  {|
resource "azurerm_virtual_network" "net" {
  name          = "quickstart-net"
  location      = "westeurope"
  address_space = ["10.7.0.0/16"]
}

resource "azurerm_subnet" "app" {
  name     = "app"
  vpc_name = azurerm_virtual_network.net.name
  cidr     = "10.7.1.0/24"
}

resource "azurerm_network_interface" "nic" {
  name     = "quickstart-nic"
  location = "westeurope"
  ip_config {
    name                  = "internal"
    subnet_id             = azurerm_subnet.app.id
    private_ip_allocation = "Dynamic"
  }
}

resource "azurerm_linux_virtual_machine" "vm" {
  name           = "quickstart-vm"
  location       = "westeurope"
  sku            = "Standard_B2s"
  nic_ids        = [azurerm_network_interface.nic.id]
  admin_username = "azureuser"
  admin_password = "CorrectHorseBattery9!"
  os_disk {
    name         = "quickstart-osdisk"
    caching      = "ReadWrite"
    storage_type = "Standard_LRS"
  }
  source_image_ref {
    publisher = "Canonical"
    offer     = "0001-com-ubuntu-server-jammy"
    sku       = "22_04-lts"
    version   = "latest"
  }
}
|}

let compile ?(provider = Zodiac_providers.Providers.default) src =
  match
    Zodiac_hcl.Compile.compile_string
      ~type_map:provider.Zodiac_provider.Provider.of_terraform src
  with
  | Error e -> Error e
  | Ok (prog, []) -> Ok prog
  | Ok (_, diags) ->
      Error
        (String.concat "; "
           (List.map
              (fun (d : Zodiac_hcl.Compile.diagnostic) ->
                Printf.sprintf "%s: %s" d.Zodiac_hcl.Compile.message
                  d.Zodiac_hcl.Compile.context)
              diags))

let compile_exn src =
  match compile src with Ok p -> p | Error e -> invalid_arg ("Registry: " ^ e)

let compile_file ?provider path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> Error e
      | src -> (
          match compile ?provider src with
          | Ok p -> Ok p
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))
