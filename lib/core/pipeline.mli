(** The end-to-end Zodiac pipeline (Figure 2): crawl (synthesize) a
    corpus, build the semantic KB, mine hypothesized checks, filter
    them statistically, complete quantitative checks through the LLM
    oracle, validate by deployment-based testing, and run the
    counterexample pass. *)

type config = {
  corpus_seed : int;
  corpus_size : int;
  violation_rate : float;
  oracle_seed : int;
  oracle_error_rate : float;
  jobs : int;
      (** domains used for the parallel phases (corpus generation, KB
          build, mining, validation batches). Every artifact is
          bit-identical for every [jobs] value; the default is
          {!Zodiac_util.Parallel.recommended_jobs}. *)
  mining : Zodiac_mining.Miner.config;
  thresholds : Zodiac_mining.Filter.thresholds;
  scheduler : Zodiac_validation.Scheduler.config;
  engine : Zodiac_engine.Engine.config;
      (** deployment-execution engine: memo cache, retry client,
          optional fault injection *)
}

val default_config : config
(** 1200 projects, 4% injected violations, default thresholds. *)

val quick_config : config
(** A small configuration for tests and examples (300 projects). *)

type artifacts = {
  config : config;
  projects : Zodiac_corpus.Generator.project list;
  corpus : (string * Zodiac_iac.Program.t) list;  (** materialized *)
  kb : Zodiac_kb.Kb.t;
  mined : Zodiac_mining.Candidate.t list;
  filtered : Zodiac_mining.Filter.outcome;
  llm_refined : Zodiac_spec.Check.t list;
  llm_rejected : int;
  candidates : Zodiac_spec.Check.t list;  (** deduplicated input to validation *)
  validation : Zodiac_validation.Scheduler.result;
  final_checks : Zodiac_spec.Check.t list;  (** after counterexample pass *)
  counterexample_fps : Zodiac_spec.Check.t list;
  engine_stats : Zodiac_engine.Stats.snapshot;
      (** deployment-engine accounting for the validation and
          counterexample passes ({!Zodiac_engine.Stats.empty} when
          validation did not run) *)
}

val deploy : Zodiac_iac.Program.t -> bool
(** The raw deployment oracle: success of the simulated ARM
    deployment, no engine in between. [run] itself deploys through a
    {!Zodiac_engine.Engine} built from [config.engine]. *)

val run : ?config:config -> unit -> artifacts
(** Execute the whole pipeline. Deterministic for a given config. *)

val mine_only : ?config:config -> unit -> artifacts
(** Stop after filtering and interpolation (validation left empty);
    much faster, used by mining-phase experiments. *)

type violation_report = {
  project : string;
  check : Zodiac_spec.Check.t;
  resources : Zodiac_iac.Resource.id list;
}

val scan :
  checks:Zodiac_spec.Check.t list ->
  corpus:(string * Zodiac_iac.Program.t) list ->
  violation_report list
(** Apply validated checks to repositories (§5.5). *)
