(** The end-to-end Zodiac pipeline (Figure 2): crawl (synthesize) a
    corpus, build the semantic KB, mine hypothesized checks, filter
    them statistically, complete quantitative checks through the LLM
    oracle, validate by deployment-based testing, and run the
    counterexample pass. *)

type config = {
  provider : Zodiac_provider.Provider.t;
      (** the cloud backend everything runs against: its schemas and
          scenarios shape the corpus, its ground truth drives the
          simulator, and its fingerprint is part of every cache key.
          Default {!Zodiac_providers.Providers.default} (Azure). *)
  corpus_seed : int;
  corpus_size : int;
  violation_rate : float;
  oracle_seed : int;
  oracle_error_rate : float;
  jobs : int;
      (** domains used for the parallel phases (corpus generation, KB
          build, mining, validation batches). Every artifact is
          bit-identical for every [jobs] value; the default is
          {!Zodiac_util.Parallel.recommended_jobs}. *)
  cache_dir : string option;
      (** warm-start cache directory ([None] = caching off, the
          default). Cold runs write corpus, KB-statistics and
          mined-candidate entries there; warm runs load them — or, when
          only [corpus_size] grew, extend the largest cached prefix
          incrementally — with byte-identical artifacts. Keys cover the
          stage inputs (provider fingerprint, seed, violation-rate bits,
          corpus size, mining config) and the {!Zodiac_util.Codec.version}; anything stale
          or corrupt decodes as a miss and the stage rebuilds cold. *)
  mining : Zodiac_mining.Miner.config;
  thresholds : Zodiac_mining.Filter.thresholds;
  scheduler : Zodiac_validation.Scheduler.config;
  engine : Zodiac_engine.Engine.config;
      (** deployment-execution engine: memo cache, retry client,
          optional fault injection *)
}

val default_config : config
(** 1200 projects, 4% injected violations, default thresholds. *)

val quick_config : config
(** A small configuration for tests and examples (300 projects). *)

type artifacts = {
  config : config;
  projects : Zodiac_corpus.Generator.project list;
  corpus : (string * Zodiac_iac.Program.t) list;  (** materialized *)
  kb : Zodiac_kb.Kb.t;
  mined : Zodiac_mining.Candidate.t list;
  filtered : Zodiac_mining.Filter.outcome;
  llm_refined : Zodiac_spec.Check.t list;
  llm_rejected : int;
  candidates : Zodiac_spec.Check.t list;  (** deduplicated input to validation *)
  validation : Zodiac_validation.Scheduler.result;
  final_checks : Zodiac_spec.Check.t list;  (** after counterexample pass *)
  counterexample_fps : Zodiac_spec.Check.t list;
  engine_stats : Zodiac_engine.Stats.snapshot;
      (** deployment-engine accounting for the validation and
          counterexample passes ({!Zodiac_engine.Stats.empty} when
          validation did not run) *)
  cache_stats : Zodiac_util.Cache.stats;
      (** warm-start cache accounting for this run (all zero when
          [config.cache_dir] is [None]) *)
}

val deploy : provider:Zodiac_provider.Provider.t -> Zodiac_iac.Program.t -> bool
(** The raw deployment oracle: success of the simulated ARM
    deployment, no engine in between. [run] itself deploys through a
    {!Zodiac_engine.Engine} built from [config.engine]. *)

val run :
  ?config:config -> ?telemetry:Zodiac_util.Telemetry.t -> unit -> artifacts
(** Execute the whole pipeline. Deterministic for a given config.

    [telemetry] (default {!Zodiac_util.Telemetry.null}) records one
    span per Figure-2 stage — [corpus], [materialize], [kb], [mine],
    [filter], [oracle], [validate], [counterexample] — each carrying
    its cache hit/miss/write deltas, parallel chunk counts and, for
    the deployment passes, the engine's request/retry/fault/memo
    counters. Telemetry observes only: artifacts are byte-identical
    with or without it, and no wall-clock value can enter them (a
    clockless recorder never reads a clock at all). *)

val mine_only :
  ?config:config -> ?telemetry:Zodiac_util.Telemetry.t -> unit -> artifacts
(** Stop after filtering and interpolation (validation left empty);
    much faster, used by mining-phase experiments. *)

val corpus_key : config -> string
(** Content address of the generated corpus (seed and violation rate;
    size-independent) — also the [key] under which the streamed KB pass
    shards, checkpoints and claims (stage ["shard-kb"]). Exposed so
    benches can plant or inspect claim files for specific shards. *)

(** {2 Streaming shard pipeline}

    The bounded-memory counterpart of {!mine_only} for corpora too
    large to materialize: projects are generated, default-materialized
    and counted shard by shard ({!Zodiac_util.Shard_stream}), and only
    the mergeable count tables accumulate — peak memory is one shard of
    programs plus the tables, independent of [corpus_size]. Two passes
    over the same shard stream: first the KB-statistics fold (finalized
    once complete), then the miner-table fold with the finalized KB
    fixed. Each completed shard checkpoints through the warm-start
    cache (stages ["shard-kb"]/["shard-mine"]), so a killed run resumes
    by re-counting only unfinished shards; the final artifacts land at
    the {e same} cache addresses as the monolithic ["kb"]/["mine"]
    stages and are byte-identical to them for every shard size and
    [jobs] value. *)

type mproc = {
  m_workers : int;  (** worker processes spawned for the pass *)
  m_claimed : int;  (** shard claims won across the fleet *)
  m_built : int;  (** shards counted and checkpointed by workers *)
  m_stolen : int;  (** claims taken over from stale holders *)
  m_waits : int;  (** poll sleeps spent waiting on siblings *)
  m_failed : int;  (** workers that died or reported no summary *)
}
(** Aggregated worker-fleet accounting for one streamed pass
    ({!no_fleet} when the pass ran single-process or was warm). *)

val no_fleet : mproc

type streamed = {
  s_config : config;
  s_shard_size : int;
  s_kb : Zodiac_kb.Kb.t;
  s_mined : Zodiac_mining.Candidate.t list;
  s_filtered : Zodiac_mining.Filter.outcome;
  s_llm_refined : Zodiac_spec.Check.t list;
  s_llm_rejected : int;
  s_candidates : Zodiac_spec.Check.t list;
  s_kb_fold : Zodiac_util.Shard_stream.outcome;
      (** KB-statistics pass accounting ({!Zodiac_util.Shard_stream.no_shards}
          when the final KB artifact was already cached) *)
  s_mine_fold : Zodiac_util.Shard_stream.outcome;
      (** miner-table pass accounting, same convention *)
  s_kb_mproc : mproc;  (** KB-pass worker fleet ({!no_fleet} when none) *)
  s_mine_mproc : mproc;  (** mine-pass worker fleet, same convention *)
  s_cache_stats : Zodiac_util.Cache.stats;
}

val mine_streamed :
  ?config:config ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  ?workers:int ->
  ?worker_command:(string -> string array) ->
  ?progress:(pass:string -> index:int -> shards:int -> built:bool -> unit) ->
  shard_size:int ->
  unit ->
  streamed
(** Mine in bounded memory: [mined]/[filtered]/[candidates] equal
    {!mine_only}'s for the same config, byte for byte ([shard_size <= 0]
    counts everything as one shard). Telemetry records the same
    [kb]/[mine]/[filter]/[oracle] spans, with [shard.*] counters inside
    the streamed stages. Without [config.cache_dir] the run still
    streams, but nothing checkpoints.

    With [workers > 1] and a [worker_command] (both required — alone,
    either is inert), each streamed pass first spawns that many child
    processes running [worker_command pass] (the argv of a re-exec of
    the current binary in worker mode, [pass] being ["kb"] or
    ["mine"]), which race to claim and checkpoint shards into the
    shared [config.cache_dir] (see {!Zodiac_util.Shard_stream.fold_worker});
    the parent waits for the fleet, then its own resumed fold becomes
    the merge pass — combining the per-shard monoid checkpoints in
    shard order and rebuilding inline anything a killed worker left
    unfinished. Artifacts are byte-identical to [workers = 1] and to
    the monolithic path for every [(workers, jobs, shard_size)]
    combination; fleets never spawn when the pass's final artifact is
    already cached. Fleet accounting lands in [s_kb_mproc]/
    [s_mine_mproc] and in [mproc.*] telemetry counters under the
    [mproc.kb]/[mproc.mine] spans.

    [progress] fires after each shard the parent merges — an
    observability hook (the CLI's tty progress lines), never part of
    results. *)

val mine_worker :
  ?config:config ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  ?stale_after:float ->
  shard_size:int ->
  pass:[ `Kb | `Mine ] ->
  unit ->
  Zodiac_util.Shard_stream.worker_outcome
(** The child-process entry point behind the hidden CLI worker verb:
    checkpoint shards of [pass] into [config.cache_dir] (required —
    raises [Invalid_argument] without one) until every shard of the
    plan is checkpointed, claiming each through the cache's claim
    files; [stale_after] bounds how long a dead sibling's claim can
    block a shard. The [`Mine] pass loads the finalized KB from the
    shared cache (final artifact or checkpoint fold — complete by the
    time the parent spawns mine workers). Returns this worker's
    claim/build accounting; it never merges and never writes final
    artifacts. *)

val worker_summary : Zodiac_util.Shard_stream.worker_outcome -> string
(** The one-line summary a worker process prints on stdout
    ([mproc-worker claimed=… built=… stolen=… waits=…]) for the parent
    to aggregate. *)

val parse_worker_summary :
  string -> Zodiac_util.Shard_stream.worker_outcome option
(** Inverse of {!worker_summary} — exposed for benches that inspect a
    worker's own accounting. *)

val cached_corpus :
  ?cache:Zodiac_util.Cache.t ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  config ->
  Zodiac_corpus.Generator.project list
(** The corpus-generation stage on its own: load the exact cached
    corpus, take a prefix of a larger one, or extend the largest cached
    prefix with freshly generated tail projects (per-index PRNG streams
    make the result identical to a cold generation either way). Used by
    the CLI [corpus] command; [cache = None] just generates. *)

type violation_report = {
  project : string;
  check : Zodiac_spec.Check.t;
  resources : Zodiac_iac.Resource.id list;
}

val scan :
  provider:Zodiac_provider.Provider.t ->
  checks:Zodiac_spec.Check.t list ->
  corpus:(string * Zodiac_iac.Program.t) list ->
  violation_report list
(** Apply validated checks to repositories (§5.5). *)
