(** Provider-registry usage examples (§5.5).

    Miniatures of the official Terraform Azure provider documentation
    examples, written in HCL. [appgw_assoc_buggy] reproduces the
    documented NIC / application-gateway backend-pool association
    example whose two semantic violations Zodiac reported upstream
    (issue #27222): a Basic/Dynamic frontend IP, and a NIC sharing the
    gateway's subnet. [appgw_assoc_fixed] is the corrected version. *)

val appgw_assoc_buggy : string
val appgw_assoc_fixed : string

val mssql_db_buggy : string
(** Miniature of the azurerm_mssql_database documentation example whose
    Basic-sku database declared an oversized max_size (issue #27194
    analogue): compiles, fails to deploy. *)

val mssql_db_fixed : string
val quickstart_vm : string
(** A correct single-VM example used by the quickstart. *)

val compile :
  ?provider:Zodiac_provider.Provider.t ->
  string ->
  (Zodiac_iac.Program.t, string) result
(** Parse + compile with the provider's type mapping (default Azure);
    fails on diagnostics. *)

val compile_file :
  ?provider:Zodiac_provider.Provider.t ->
  string ->
  (Zodiac_iac.Program.t, string) result
(** {!compile} the contents of a file; unreadable files and compile
    diagnostics both surface as [Error] with the path in the message,
    so CLI callers report malformed input cleanly instead of aborting
    with a backtrace. *)

val compile_exn : string -> Zodiac_iac.Program.t
